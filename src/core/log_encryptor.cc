#include "core/log_encryptor.h"

#include <functional>

#include "common/hex.h"
#include "crypto/det.h"
#include "crypto/hmac.h"
#include "crypto/paillier.h"
#include "crypto/prob.h"
#include "cryptdb/rewriter.h"
#include "distance/access_area_distance.h"
#include "distance/result_distance.h"
#include "distance/structure_distance.h"
#include "distance/token_distance.h"

namespace dpe::core {

using crypto::PpeClass;
using db::ColumnType;
using sql::ColumnRef;
using sql::Literal;
using sql::Predicate;
using sql::PredicatePtr;
using sql::SelectQuery;

const char* MeasureKindName(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kToken:
      return "token";
    case MeasureKind::kStructure:
      return "structure";
    case MeasureKind::kResult:
      return "result";
    case MeasureKind::kAccessArea:
      return "access-area";
  }
  return "?";
}

std::unique_ptr<distance::QueryDistanceMeasure> MakeMeasure(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kToken:
      return std::make_unique<distance::TokenDistance>();
    case MeasureKind::kStructure:
      return std::make_unique<distance::StructureDistance>();
    case MeasureKind::kResult:
      return std::make_unique<distance::ResultDistance>();
    case MeasureKind::kAccessArea:
      return std::make_unique<distance::AccessAreaDistance>(
          distance::AccessAreaDistance::CanonicalDpeOptions());
  }
  return nullptr;
}

std::string SchemeSpec::Describe() const {
  std::string out = std::string(MeasureKindName(measure)) + ": EncRel=" +
                    crypto::PpeClassName(enc_rel) + ", EncAttr=" +
                    crypto::PpeClassName(enc_attr) + ", EncConst=";
  switch (const_mode) {
    case ConstMode::kUniform:
      out += crypto::PpeClassName(uniform_const);
      out += global_const_key ? " (one shared key)" : " (per-attribute keys)";
      break;
    case ConstMode::kCryptDb:
      out += "via CryptDB";
      break;
    case ConstMode::kCryptDbNoHom:
      out += "via CryptDB, except HOM";
      break;
  }
  return out;
}

SchemeSpec CanonicalScheme(MeasureKind measure) {
  SchemeSpec spec;
  spec.measure = measure;
  spec.enc_rel = PpeClass::kDet;
  spec.enc_attr = PpeClass::kDet;
  switch (measure) {
    case MeasureKind::kToken:
      spec.const_mode = ConstMode::kUniform;
      spec.uniform_const = PpeClass::kDet;
      spec.global_const_key = true;  // tokens carry no attribute context
      break;
    case MeasureKind::kStructure:
      spec.const_mode = ConstMode::kUniform;
      spec.uniform_const = PpeClass::kProb;  // features drop constants
      spec.global_const_key = false;
      break;
    case MeasureKind::kResult:
      spec.const_mode = ConstMode::kCryptDb;
      spec.global_const_key = false;
      break;
    case MeasureKind::kAccessArea:
      spec.const_mode = ConstMode::kCryptDbNoHom;
      spec.global_const_key = false;
      break;
  }
  return spec;
}

namespace {

/// Alias/qualifier resolution for one query.
struct QueryScope {
  std::map<std::string, std::string> qualifier_to_relation;
  std::vector<std::string> relations;

  explicit QueryScope(const SelectQuery& q) {
    Add(q.from);
    for (const auto& j : q.joins) Add(j.table);
  }

  void Add(const sql::TableRef& t) {
    relations.push_back(t.name);
    qualifier_to_relation[t.name] = t.name;
    if (!t.alias.empty()) qualifier_to_relation[t.alias] = t.name;
  }

  Result<std::string> RelationOf(const ColumnRef& c) const {
    if (!c.relation.empty()) {
      auto it = qualifier_to_relation.find(c.relation);
      if (it == qualifier_to_relation.end()) {
        return Status::ExecutionError("unknown qualifier " + c.relation);
      }
      return it->second;
    }
    if (relations.size() == 1) return relations.front();
    return Status::ExecutionError("unqualified column " + c.name +
                                  " in multi-relation query");
  }
};

Result<ColumnType> TypeOf(const cryptdb::SchemaMap& schemas,
                          const std::string& column_key) {
  auto dot = column_key.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("column key must be rel.attr");
  }
  auto it = schemas.find(column_key.substr(0, dot));
  if (it == schemas.end()) {
    return Status::NotFound("unknown relation in " + column_key);
  }
  auto idx = it->second.Find(column_key.substr(dot + 1));
  if (!idx.has_value()) {
    return Status::NotFound("unknown column " + column_key);
  }
  return it->second.columns()[*idx].type;
}

/// Union-find over column keys (join-group construction).
class UnionFind {
 public:
  std::string Find(const std::string& x) {
    auto it = parent_.find(x);
    if (it == parent_.end() || it->second == x) {
      parent_[x] = x;
      return x;
    }
    std::string root = Find(it->second);
    parent_[x] = root;
    return root;
  }
  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  }
  bool Joined(const std::string& x) const { return parent_.contains(x); }

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace

Result<cryptdb::OnionLayout> DeriveOnionLayout(
    const std::vector<SelectQuery>& log, const cryptdb::SchemaMap& schemas) {
  cryptdb::OnionLayout layout;
  UnionFind join_groups;

  auto touch = [&](const std::string& key) -> cryptdb::ColumnOnionConfig& {
    return layout.columns[key];
  };

  std::function<Status(const Predicate&, const QueryScope&)> walk_pred =
      [&](const Predicate& p, const QueryScope& scope) -> Status {
    switch (p.kind) {
      case Predicate::Kind::kCompare: {
        DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(p.column));
        const std::string key = rel + "." + p.column.name;
        if (p.op == sql::CompareOp::kEq || p.op == sql::CompareOp::kNe) {
          touch(key).eq = true;
        } else {
          touch(key).ord = true;
        }
        return Status::OK();
      }
      case Predicate::Kind::kColumnCompare: {
        DPE_ASSIGN_OR_RETURN(std::string rel1, scope.RelationOf(p.column));
        DPE_ASSIGN_OR_RETURN(std::string rel2, scope.RelationOf(p.column2));
        const std::string k1 = rel1 + "." + p.column.name;
        const std::string k2 = rel2 + "." + p.column2.name;
        touch(k1).eq = true;
        touch(k2).eq = true;
        join_groups.Union(k1, k2);
        return Status::OK();
      }
      case Predicate::Kind::kBetween: {
        DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(p.column));
        touch(rel + "." + p.column.name).ord = true;
        return Status::OK();
      }
      case Predicate::Kind::kIn: {
        DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(p.column));
        touch(rel + "." + p.column.name).eq = true;
        return Status::OK();
      }
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr:
      case Predicate::Kind::kNot:
        for (const auto& c : p.children) {
          DPE_RETURN_NOT_OK(walk_pred(*c, scope));
        }
        return Status::OK();
    }
    return Status::Internal("unreachable");
  };

  for (const SelectQuery& q : log) {
    QueryScope scope(q);
    for (const auto& item : q.items) {
      if (item.star && item.agg == sql::AggFn::kNone) {
        // SELECT *: every column of every relation in scope is projected.
        for (const std::string& rel : scope.relations) {
          auto it = schemas.find(rel);
          if (it == schemas.end()) {
            return Status::NotFound("unknown relation " + rel);
          }
          for (const auto& col : it->second.columns()) {
            touch(rel + "." + col.name).eq = true;
          }
        }
        continue;
      }
      if (item.star) continue;  // COUNT(*)
      DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(item.column));
      const std::string key = rel + "." + item.column.name;
      switch (item.agg) {
        case sql::AggFn::kNone:
        case sql::AggFn::kCount:
          touch(key).eq = true;
          break;
        case sql::AggFn::kSum:
        case sql::AggFn::kAvg:
          touch(key).add = true;
          break;
        case sql::AggFn::kMin:
        case sql::AggFn::kMax:
          touch(key).ord = true;
          break;
      }
    }
    for (const auto& j : q.joins) {
      DPE_ASSIGN_OR_RETURN(std::string rel1, scope.RelationOf(j.left));
      DPE_ASSIGN_OR_RETURN(std::string rel2, scope.RelationOf(j.right));
      const std::string k1 = rel1 + "." + j.left.name;
      const std::string k2 = rel2 + "." + j.right.name;
      touch(k1).eq = true;
      touch(k2).eq = true;
      join_groups.Union(k1, k2);
    }
    if (q.where) DPE_RETURN_NOT_OK(walk_pred(*q.where, scope));
    for (const auto& c : q.group_by) {
      DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(c));
      touch(rel + "." + c.name).eq = true;
    }
    for (const auto& o : q.order_by) {
      DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(o.column));
      touch(rel + "." + o.column.name).ord = true;
    }
  }

  // Materialize join groups (group name = root key).
  for (const auto& [key, cfg] : layout.columns) {
    (void)cfg;
    if (join_groups.Joined(key)) {
      std::string root = join_groups.Find(key);
      layout.join_group_of[key] = root;
    }
  }
  return layout;
}

Result<std::map<std::string, PpeClass>> DeriveConstClasses(
    const std::vector<SelectQuery>& log, const cryptdb::SchemaMap& schemas,
    ConstMode mode) {
  DPE_ASSIGN_OR_RETURN(cryptdb::OnionLayout layout,
                       DeriveOnionLayout(log, schemas));
  std::map<std::string, PpeClass> out;
  for (const auto& [key, cfg] : layout.columns) {
    if (cfg.ord) {
      // Any range predicate forces order-comparable constants for the whole
      // attribute (mixed DET/OPE constants would not be inter-comparable).
      out[key] = PpeClass::kOpe;
    } else if (cfg.eq) {
      out[key] = PpeClass::kDet;
    } else if (cfg.add) {
      out[key] = mode == ConstMode::kCryptDb ? PpeClass::kHom : PpeClass::kProb;
    } else {
      out[key] = PpeClass::kProb;
    }
  }
  return out;
}

Result<LogEncryptor> LogEncryptor::Create(
    const SchemeSpec& spec, const crypto::KeyManager& keys,
    const db::Database& plain_db, const std::vector<SelectQuery>& log,
    const db::DomainRegistry& domains, const Options& options) {
  LogEncryptor enc;
  enc.spec_ = spec;
  enc.keys_ = &keys;
  enc.plain_db_ = &plain_db;
  enc.log_ = &log;
  enc.domains_ = &domains;
  enc.options_ = options;

  for (const std::string& rel : plain_db.TableNames()) {
    DPE_ASSIGN_OR_RETURN(const db::Table* t, plain_db.GetTable(rel));
    enc.schemas_[rel] = t->schema();
  }

  if (spec.const_mode != ConstMode::kUniform) {
    DPE_ASSIGN_OR_RETURN(enc.const_class_,
                         DeriveConstClasses(log, enc.schemas_, spec.const_mode));
  }

  if (spec.const_mode == ConstMode::kCryptDb) {
    DPE_ASSIGN_OR_RETURN(cryptdb::OnionLayout layout,
                         DeriveOnionLayout(log, enc.schemas_));
    // Exact Def.-1 preservation of the result measure needs value images
    // that are consistent ACROSS columns (plaintext tuples can coincide
    // across attributes); share the EQ/ORD keys globally (JOIN usage mode).
    layout.shared_value_keys = true;
    cryptdb::CryptDb::Options db_options;
    db_options.crypto.paillier_bits = options.paillier_bits;
    db_options.crypto.ope_range_bits = options.ope_range_bits;
    crypto::Csprng rng = options.rng_seed.empty()
                             ? crypto::Csprng::FromSystemEntropy()
                             : crypto::Csprng::FromSeed(options.rng_seed);
    DPE_ASSIGN_OR_RETURN(
        cryptdb::CryptDb cdb,
        cryptdb::CryptDb::Build(plain_db, layout, keys, db_options, std::move(rng)));
    enc.crypt_db_ = std::make_shared<cryptdb::CryptDb>(std::move(cdb));
  }

  enc.prob_rng_ = options.rng_seed.empty()
                      ? crypto::Csprng::FromSystemEntropy()
                      : crypto::Csprng::FromSeed(options.rng_seed + "/prob");
  return enc;
}

namespace {

Result<std::string> EncryptNameWithClass(PpeClass cls,
                                         const crypto::KeyManager& keys,
                                         const std::string& purpose,
                                         const std::string& name,
                                         crypto::Csprng* prob_rng) {
  switch (cls) {
    case PpeClass::kIdentity:
      return name;
    case PpeClass::kDet: {
      DPE_ASSIGN_OR_RETURN(crypto::DetEncryptor det,
                           crypto::DetEncryptor::Create(keys.Derive(purpose)));
      return "e" + HexEncode(det.EncryptConst(name));
    }
    case PpeClass::kProb: {
      DPE_ASSIGN_OR_RETURN(
          crypto::ProbEncryptor prob,
          crypto::ProbEncryptor::Create(
              keys.Derive(purpose),
              crypto::Csprng::FromSeed(prob_rng->NextBytes(32))));
      return "p" + HexEncode(prob.Encrypt(name));
    }
    default:
      return Status::Unimplemented(std::string(crypto::PpeClassName(cls)) +
                                   " is not applicable to identifiers");
  }
}

}  // namespace

Result<std::string> LogEncryptor::EncryptRelName(const std::string& name) const {
  return EncryptNameWithClass(spec_.enc_rel, *keys_, "name/rel", name,
                              &*prob_rng_);
}

Result<std::string> LogEncryptor::EncryptAttrName(const std::string& name) const {
  return EncryptNameWithClass(spec_.enc_attr, *keys_, "name/attr", name,
                              &*prob_rng_);
}

Result<PpeClass> LogEncryptor::ConstClassFor(const std::string& column_key) const {
  if (spec_.const_mode == ConstMode::kUniform) return spec_.uniform_const;
  auto it = const_class_.find(column_key);
  if (it == const_class_.end()) return PpeClass::kProb;  // never constrained
  return it->second;
}

Result<Literal> LogEncryptor::EncryptConstant(const std::string& column_key,
                                              const Literal& literal) const {
  DPE_ASSIGN_OR_RETURN(PpeClass cls, ConstClassFor(column_key));
  switch (cls) {
    case PpeClass::kIdentity:
      return literal;
    case PpeClass::kDet: {
      if (spec_.const_mode == ConstMode::kCryptDb) {
        DPE_ASSIGN_OR_RETURN(
            db::Value cell,
            crypt_db_->onion_crypto().EncryptEq(column_key,
                                                db::Value::FromLiteral(literal)));
        return Literal::String(cell.string_value());
      }
      const std::string purpose = spec_.global_const_key
                                      ? "const/@global"
                                      : "const/" + column_key;
      // Under the single shared key (token scheme), numeric constants map to
      // *numeric* images via a keyed PRF. This keeps the token substitution
      // role-independent: the integer 5 used as a predicate constant and as
      // a LIMIT count is one token of the query string and must have one
      // image (see DESIGN.md, token fine point). Still class DET: keyed,
      // deterministic, injective up to PRF collisions.
      if (spec_.global_const_key) {
        const Bytes prf_key = keys_->Derive(purpose);
        if (literal.kind() == Literal::Kind::kInt) {
          uint64_t img =
              crypto::PrfU64(prf_key, "int-det", literal.CanonicalBytes());
          return Literal::Int(static_cast<int64_t>(img >> 1));
        }
        if (literal.kind() == Literal::Kind::kDouble) {
          uint64_t img =
              crypto::PrfU64(prf_key, "double-det", literal.CanonicalBytes());
          // 53 mantissa bits -> exact canonical round trip.
          return Literal::Double(
              static_cast<double>(img >> 11) * 0x1.0p-53);
        }
      }
      DPE_ASSIGN_OR_RETURN(crypto::DetEncryptor det,
                           crypto::DetEncryptor::Create(keys_->Derive(purpose)));
      return Literal::String("e" +
                             HexEncode(det.EncryptConst(literal.CanonicalBytes())));
    }
    case PpeClass::kOpe: {
      if (spec_.const_mode == ConstMode::kCryptDb) {
        DPE_ASSIGN_OR_RETURN(
            db::Value cell,
            crypt_db_->onion_crypto().EncryptOrd(column_key,
                                                 db::Value::FromLiteral(literal)));
        return Literal::String(cell.string_value());
      }
      DPE_ASSIGN_OR_RETURN(uint64_t u, cryptdb::OrderPreservingU64(
                                           db::Value::FromLiteral(literal)));
      crypto::BoldyrevaOpe::Options ope_options;
      ope_options.domain_bits = 64;
      ope_options.range_bits = options_.ope_range_bits;
      DPE_ASSIGN_OR_RETURN(
          crypto::BoldyrevaOpe ope,
          crypto::BoldyrevaOpe::Create(keys_->Derive("const-ope/" + column_key),
                                       ope_options));
      return Literal::String("o" + ope.EncryptToHex(u));
    }
    default:
      return Status::InvalidArgument(
          std::string(crypto::PpeClassName(cls)) +
          " has no deterministic constant image (use EncryptQuery)");
  }
}

Result<std::string> LogEncryptor::ResolveColumnKey(const ColumnRef& c,
                                                   const SelectQuery& q) const {
  QueryScope scope(q);
  DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(c));
  return rel + "." + c.name;
}

Result<ColumnRef> LogEncryptor::EncryptColumnRef(const ColumnRef& c) const {
  ColumnRef out;
  if (!c.relation.empty()) {
    DPE_ASSIGN_OR_RETURN(out.relation, EncryptRelName(c.relation));
  }
  DPE_ASSIGN_OR_RETURN(out.name, EncryptAttrName(c.name));
  return out;
}

Result<Literal> LogEncryptor::EncryptConstantForQuery(const ColumnRef& c,
                                                      const SelectQuery& q,
                                                      const Literal& lit,
                                                      bool range_context) const {
  (void)range_context;  // the class is per-attribute, not per-operator
  DPE_ASSIGN_OR_RETURN(std::string key, ResolveColumnKey(c, q));
  DPE_ASSIGN_OR_RETURN(ColumnType type, TypeOf(schemas_, key));
  DPE_ASSIGN_OR_RETURN(Literal coerced, cryptdb::CoerceLiteral(type, lit));
  DPE_ASSIGN_OR_RETURN(PpeClass cls, ConstClassFor(key));
  switch (cls) {
    case PpeClass::kProb: {
      DPE_ASSIGN_OR_RETURN(
          crypto::ProbEncryptor prob,
          crypto::ProbEncryptor::Create(
              keys_->Derive("const/" + key),
              crypto::Csprng::FromSeed(prob_rng_->NextBytes(32))));
      return Literal::String("p" + HexEncode(prob.Encrypt(coerced.CanonicalBytes())));
    }
    case PpeClass::kHom: {
      if (coerced.kind() != Literal::Kind::kInt) {
        return Status::TypeError("HOM constants must be integers");
      }
      if (crypt_db_ == nullptr) {
        return Status::InvalidArgument("HOM constants require the CryptDB mode");
      }
      // Encrypt under the database Paillier key (rare: constants of purely
      // aggregated attributes do not occur in well-formed logs).
      auto& onion = const_cast<cryptdb::OnionCrypto&>(crypt_db_->onion_crypto());
      DPE_ASSIGN_OR_RETURN(db::Value cell,
                           onion.EncryptAdd(key, db::Value::FromLiteral(coerced)));
      return Literal::String(cell.string_value());
    }
    default:
      return EncryptConstant(key, coerced);
  }
}

Result<PredicatePtr> LogEncryptor::EncryptPredicate(const Predicate& p,
                                                    const SelectQuery& q) const {
  using Kind = Predicate::Kind;
  switch (p.kind) {
    case Kind::kCompare: {
      DPE_ASSIGN_OR_RETURN(ColumnRef col, EncryptColumnRef(p.column));
      const bool range = p.op != sql::CompareOp::kEq && p.op != sql::CompareOp::kNe;
      DPE_ASSIGN_OR_RETURN(Literal lit,
                           EncryptConstantForQuery(p.column, q, p.literal, range));
      return Predicate::Compare(std::move(col), p.op, std::move(lit));
    }
    case Kind::kColumnCompare: {
      DPE_ASSIGN_OR_RETURN(ColumnRef a, EncryptColumnRef(p.column));
      DPE_ASSIGN_OR_RETURN(ColumnRef b, EncryptColumnRef(p.column2));
      return Predicate::ColumnCompare(std::move(a), p.op, std::move(b));
    }
    case Kind::kBetween: {
      DPE_ASSIGN_OR_RETURN(ColumnRef col, EncryptColumnRef(p.column));
      DPE_ASSIGN_OR_RETURN(Literal lo,
                           EncryptConstantForQuery(p.column, q, p.low, true));
      DPE_ASSIGN_OR_RETURN(Literal hi,
                           EncryptConstantForQuery(p.column, q, p.high, true));
      return Predicate::Between(std::move(col), std::move(lo), std::move(hi));
    }
    case Kind::kIn: {
      DPE_ASSIGN_OR_RETURN(ColumnRef col, EncryptColumnRef(p.column));
      std::vector<Literal> values;
      for (const auto& v : p.in_list) {
        DPE_ASSIGN_OR_RETURN(Literal ev,
                             EncryptConstantForQuery(p.column, q, v, false));
        values.push_back(std::move(ev));
      }
      return Predicate::In(std::move(col), std::move(values));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<PredicatePtr> children;
      for (const auto& c : p.children) {
        DPE_ASSIGN_OR_RETURN(PredicatePtr ec, EncryptPredicate(*c, q));
        children.push_back(std::move(ec));
      }
      return p.kind == Kind::kAnd ? Predicate::And(std::move(children))
                                  : Predicate::Or(std::move(children));
    }
    case Kind::kNot: {
      DPE_ASSIGN_OR_RETURN(PredicatePtr child, EncryptPredicate(*p.children[0], q));
      return Predicate::Not(std::move(child));
    }
  }
  return Status::Internal("unreachable");
}

Result<SelectQuery> LogEncryptor::EncryptQuery(const SelectQuery& q) const {
  // CryptDB mode delegates to the onion rewriter (per-operator onions).
  if (spec_.const_mode == ConstMode::kCryptDb) {
    return crypt_db_->Rewrite(q);
  }

  SelectQuery out;
  out.distinct = q.distinct;
  DPE_ASSIGN_OR_RETURN(out.from.name, EncryptRelName(q.from.name));
  if (!q.from.alias.empty()) {
    DPE_ASSIGN_OR_RETURN(out.from.alias, EncryptRelName(q.from.alias));
  }
  for (const auto& j : q.joins) {
    sql::JoinClause ej;
    DPE_ASSIGN_OR_RETURN(ej.table.name, EncryptRelName(j.table.name));
    if (!j.table.alias.empty()) {
      DPE_ASSIGN_OR_RETURN(ej.table.alias, EncryptRelName(j.table.alias));
    }
    DPE_ASSIGN_OR_RETURN(ej.left, EncryptColumnRef(j.left));
    DPE_ASSIGN_OR_RETURN(ej.right, EncryptColumnRef(j.right));
    out.joins.push_back(std::move(ej));
  }
  for (const auto& item : q.items) {
    if (item.star && item.agg == sql::AggFn::kNone) {
      out.items.push_back(sql::SelectItem::Star());
    } else if (item.star) {
      out.items.push_back(sql::SelectItem::CountStar());
    } else {
      DPE_ASSIGN_OR_RETURN(ColumnRef col, EncryptColumnRef(item.column));
      out.items.push_back(item.agg == sql::AggFn::kNone
                              ? sql::SelectItem::Col(std::move(col))
                              : sql::SelectItem::Agg(item.agg, std::move(col)));
    }
  }
  if (q.where) {
    DPE_ASSIGN_OR_RETURN(out.where, EncryptPredicate(*q.where, q));
  }
  for (const auto& c : q.group_by) {
    DPE_ASSIGN_OR_RETURN(ColumnRef col, EncryptColumnRef(c));
    out.group_by.push_back(std::move(col));
  }
  for (const auto& o : q.order_by) {
    sql::OrderItem item;
    DPE_ASSIGN_OR_RETURN(item.column, EncryptColumnRef(o.column));
    item.ascending = o.ascending;
    out.order_by.push_back(std::move(item));
  }
  // LIMIT: under the shared-key DET constant scheme the count is a token of
  // the query string like any other integer constant, so it gets the same
  // PRF image; otherwise it stays plain (it is a cardinality, not an
  // attribute constant, and executing schemes need it intact).
  if (q.limit.has_value() && spec_.const_mode == ConstMode::kUniform &&
      spec_.uniform_const == PpeClass::kDet && spec_.global_const_key) {
    DPE_ASSIGN_OR_RETURN(
        Literal img, EncryptConstant("@limit", Literal::Int(*q.limit)));
    out.limit = img.int_value();
  } else {
    out.limit = q.limit;
  }
  return out;
}

Result<EncryptionArtifacts> LogEncryptor::EncryptAll() const {
  EncryptionArtifacts artifacts;
  artifacts.encrypted_log.reserve(log_->size());
  for (const SelectQuery& q : *log_) {
    DPE_ASSIGN_OR_RETURN(SelectQuery eq, EncryptQuery(q));
    artifacts.encrypted_log.push_back(std::move(eq));
  }

  if (spec_.measure == MeasureKind::kResult && crypt_db_ != nullptr) {
    artifacts.encrypted_db = crypt_db_->encrypted();
    artifacts.provider_options = crypt_db_->ProviderOptions();
  }

  if (spec_.measure == MeasureKind::kAccessArea) {
    db::DomainRegistry enc_domains;
    for (const auto& [key, domain] : domains_->all()) {
      DPE_ASSIGN_OR_RETURN(PpeClass cls, ConstClassFor(key));
      if (cls != PpeClass::kDet && cls != PpeClass::kOpe) {
        continue;  // PROB/HOM attributes: domain not shared (higher security)
      }
      DPE_ASSIGN_OR_RETURN(sql::Literal min_lit,
                           db::Value(domain.min).ToLiteral());
      DPE_ASSIGN_OR_RETURN(sql::Literal max_lit,
                           db::Value(domain.max).ToLiteral());
      DPE_ASSIGN_OR_RETURN(sql::Literal enc_min, EncryptConstant(key, min_lit));
      DPE_ASSIGN_OR_RETURN(sql::Literal enc_max, EncryptConstant(key, max_lit));
      auto dot = key.find('.');
      DPE_ASSIGN_OR_RETURN(std::string enc_rel,
                           EncryptRelName(key.substr(0, dot)));
      DPE_ASSIGN_OR_RETURN(std::string enc_attr,
                           EncryptAttrName(key.substr(dot + 1)));
      enc_domains.Set(enc_rel + "." + enc_attr,
                      db::Domain{db::Value::FromLiteral(enc_min),
                                 db::Value::FromLiteral(enc_max)});
    }
    artifacts.encrypted_domains = std::move(enc_domains);
  }
  return artifacts;
}

}  // namespace dpe::core
