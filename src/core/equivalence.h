// c-equivalence checkers (paper Definition 2): for a characteristic c and an
// encryption scheme Enc, verify  Enc(c(x)) == c(Enc(x))  for every query x
// of a log.
//
//   token equivalence        c = tokens          (Def. 3 context)
//   structural equivalence   c = features        (§IV-B-2)
//   result equivalence       c = result_tuples   (Def. 4)
//   access-area equivalence  c = access_A        (§IV-B-4)
//
// Result equivalence has two modes (DESIGN.md §2, HOM fine point):
// kCiphertext compares byte-wise at the onion layer (exact for aggregate-free
// queries), kDecrypted compares after owner-side decryption (the CryptDB
// proxy view; covers aggregate queries).

#ifndef DPE_CORE_EQUIVALENCE_H_
#define DPE_CORE_EQUIVALENCE_H_

#include <string>
#include <vector>

#include "core/log_encryptor.h"

namespace dpe::core {

struct EquivalenceReport {
  std::string notion;
  size_t checked = 0;
  size_t failed = 0;
  size_t skipped = 0;  ///< e.g. aggregate queries in kCiphertext mode
  std::string first_failure;

  bool ok() const { return failed == 0; }
};

/// Token equivalence: Enc(tokens(q)) == tokens(Enc(q)).
Result<EquivalenceReport> CheckTokenEquivalence(
    const LogEncryptor& enc, const std::vector<sql::SelectQuery>& log);

/// Structural equivalence: Enc(features(q)) == features(Enc(q)).
Result<EquivalenceReport> CheckStructuralEquivalence(
    const LogEncryptor& enc, const std::vector<sql::SelectQuery>& log);

enum class ResultEquivalenceMode { kCiphertext, kDecrypted };

/// Result equivalence: Enc(result_tuples(q)) == result_tuples(Enc(q)).
/// Requires an encryptor in CryptDB mode.
Result<EquivalenceReport> CheckResultEquivalence(
    const LogEncryptor& enc, const std::vector<sql::SelectQuery>& log,
    ResultEquivalenceMode mode);

/// Access-area equivalence: Enc(access_A(q)) == access_A(Enc(q)) for every
/// accessed attribute A.
Result<EquivalenceReport> CheckAccessAreaEquivalence(
    const LogEncryptor& enc, const std::vector<sql::SelectQuery>& log,
    const db::DomainRegistry& plain_domains);

/// Dispatches to the notion belonging to `kind`.
Result<EquivalenceReport> CheckEquivalence(MeasureKind kind,
                                           const LogEncryptor& enc,
                                           const std::vector<sql::SelectQuery>& log,
                                           const db::DomainRegistry& plain_domains);

}  // namespace dpe::core

#endif  // DPE_CORE_EQUIVALENCE_H_
