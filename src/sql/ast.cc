#include "sql/ast.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace dpe::sql {

Literal Literal::Int(int64_t v) {
  Literal l;
  l.kind_ = Kind::kInt;
  l.int_value_ = v;
  return l;
}

Literal Literal::Double(double v) {
  Literal l;
  l.kind_ = Kind::kDouble;
  l.double_value_ = v;
  return l;
}

Literal Literal::String(std::string v) {
  Literal l;
  l.kind_ = Kind::kString;
  l.string_value_ = std::move(v);
  return l;
}

namespace {
/// Canonical shortest round-trip text for a double.
std::string DoubleToCanonical(double v) {
  char buf[64];
  // %.17g round-trips; try shorter representations first.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double parsed = std::strtod(buf, nullptr);
    if (parsed == v) break;
  }
  std::string s(buf);
  // Ensure the lexer sees a float (needs '.' or exponent).
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find('E') == std::string::npos && s.find("inf") == std::string::npos &&
      s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}
}  // namespace

std::string Literal::ToSql() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(int_value_);
    case Kind::kDouble:
      return DoubleToCanonical(double_value_);
    case Kind::kString: {
      std::string out = "'";
      for (char c : string_value_) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "";
}

Bytes Literal::CanonicalBytes() const {
  switch (kind_) {
    case Kind::kInt:
      return "i:" + std::to_string(int_value_);
    case Kind::kDouble:
      return "d:" + DoubleToCanonical(double_value_);
    case Kind::kString:
      return "s:" + string_value_;
  }
  return "";
}

Result<Literal> Literal::FromCanonicalBytes(std::string_view bytes) {
  if (bytes.size() < 2 || bytes[1] != ':') {
    return Status::InvalidArgument("malformed canonical literal encoding");
  }
  std::string_view body = bytes.substr(2);
  switch (bytes[0]) {
    case 'i': {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(body.begin(), body.end(), v);
      if (ec != std::errc() || ptr != body.end()) {
        return Status::InvalidArgument("bad int literal encoding");
      }
      return Literal::Int(v);
    }
    case 'd': {
      std::string s(body);
      char* end = nullptr;
      double v = std::strtod(s.c_str(), &end);
      if (end != s.c_str() + s.size()) {
        return Status::InvalidArgument("bad double literal encoding");
      }
      return Literal::Double(v);
    }
    case 's':
      return Literal::String(std::string(body));
    default:
      return Status::InvalidArgument("unknown literal type tag");
  }
}

bool Literal::operator==(const Literal& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kInt:
      return int_value_ == other.int_value_;
    case Kind::kDouble:
      return double_value_ == other.double_value_;
    case Kind::kString:
      return string_value_ == other.string_value_;
  }
  return false;
}

bool Literal::operator<(const Literal& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kInt:
      return int_value_ < other.int_value_;
    case Kind::kDouble:
      return double_value_ < other.double_value_;
    case Kind::kString:
      return string_value_ < other.string_value_;
  }
  return false;
}

const char* CompareOpSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

PredicatePtr Predicate::Compare(ColumnRef c, CompareOp op, Literal l) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kCompare;
  p->column = std::move(c);
  p->op = op;
  p->literal = std::move(l);
  return p;
}

PredicatePtr Predicate::ColumnCompare(ColumnRef a, CompareOp op, ColumnRef b) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kColumnCompare;
  p->column = std::move(a);
  p->op = op;
  p->column2 = std::move(b);
  return p;
}

PredicatePtr Predicate::Between(ColumnRef c, Literal lo, Literal hi) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kBetween;
  p->column = std::move(c);
  p->low = std::move(lo);
  p->high = std::move(hi);
  return p;
}

PredicatePtr Predicate::In(ColumnRef c, std::vector<Literal> values) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kIn;
  p->column = std::move(c);
  p->in_list = std::move(values);
  return p;
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kAnd;
  p->children = std::move(children);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kOr;
  p->children = std::move(children);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr child) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kNot;
  p->children.push_back(std::move(child));
  return p;
}

PredicatePtr Predicate::Clone() const {
  auto p = std::make_unique<Predicate>();
  p->kind = kind;
  p->column = column;
  p->op = op;
  p->literal = literal;
  p->column2 = column2;
  p->low = low;
  p->high = high;
  p->in_list = in_list;
  for (const auto& c : children) p->children.push_back(c->Clone());
  return p;
}

bool Predicate::Equals(const Predicate& other) const {
  if (kind != other.kind) return false;
  if (!(column == other.column)) return false;
  if (op != other.op) return false;
  if (literal != other.literal) return false;
  if (!(column2 == other.column2)) return false;
  if (low != other.low || high != other.high) return false;
  if (in_list != other.in_list) return false;
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

const char* AggFnSql(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "";
}

SelectQuery SelectQuery::CloneValue() const {
  SelectQuery q;
  q.distinct = distinct;
  q.items = items;
  q.from = from;
  q.joins = joins;
  if (where) q.where = where->Clone();
  q.group_by = group_by;
  q.order_by = order_by;
  q.limit = limit;
  return q;
}

bool SelectQuery::Equals(const SelectQuery& other) const {
  if (distinct != other.distinct || !(from == other.from)) return false;
  if (items != other.items || joins != other.joins) return false;
  if (group_by != other.group_by || order_by != other.order_by) return false;
  if (limit != other.limit) return false;
  if ((where == nullptr) != (other.where == nullptr)) return false;
  if (where && !where->Equals(*other.where)) return false;
  return true;
}

std::vector<std::string> SelectQuery::Relations() const {
  std::vector<std::string> out;
  out.push_back(from.name);
  for (const auto& j : joins) out.push_back(j.table.name);
  return out;
}

namespace {
void CollectPredicateColumns(const Predicate& p, std::vector<ColumnRef>& out) {
  switch (p.kind) {
    case Predicate::Kind::kCompare:
    case Predicate::Kind::kBetween:
    case Predicate::Kind::kIn:
      out.push_back(p.column);
      break;
    case Predicate::Kind::kColumnCompare:
      out.push_back(p.column);
      out.push_back(p.column2);
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      for (const auto& c : p.children) CollectPredicateColumns(*c, out);
      break;
  }
}
}  // namespace

std::vector<ColumnRef> SelectQuery::Columns() const {
  std::vector<ColumnRef> out;
  for (const auto& item : items) {
    if (!item.star) out.push_back(item.column);
  }
  for (const auto& j : joins) {
    out.push_back(j.left);
    out.push_back(j.right);
  }
  if (where) CollectPredicateColumns(*where, out);
  for (const auto& c : group_by) out.push_back(c);
  for (const auto& o : order_by) out.push_back(o.column);
  return out;
}

}  // namespace dpe::sql
