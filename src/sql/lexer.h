// Hand-written SQL lexer for the grammar subset of DESIGN.md §5.3.

#ifndef DPE_SQL_LEXER_H_
#define DPE_SQL_LEXER_H_

#include <set>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace dpe::sql {

/// Tokenizes `text`. Keywords are upper-cased, identifiers lower-cased,
/// numeric and string literals keep a canonical lexeme. The terminating
/// kEnd token is NOT included.
Result<std::vector<Token>> Lex(std::string_view text);

/// The token-set characteristic of Def. 3: the set of lexemes of `text`.
/// Fails if the text does not lex.
Result<std::set<std::string>> TokenSet(std::string_view text);

}  // namespace dpe::sql

#endif  // DPE_SQL_LEXER_H_
