// SQL tokens. `tokens(Q)` — the characteristic of the paper's token
// equivalence notion (Def. 3) — is the set of lexemes produced by the lexer
// over the canonical printed form of a query.

#ifndef DPE_SQL_TOKEN_H_
#define DPE_SQL_TOKEN_H_

#include <set>
#include <string>
#include <vector>

namespace dpe::sql {

enum class TokenKind {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (normalized upper-case)
  kIdentifier,  ///< relation / attribute names (normalized lower-case)
  kInteger,     ///< 42
  kFloat,       ///< 3.14
  kString,      ///< 'abc' (lexeme keeps the quotes)
  kOperator,    ///< = <> < <= > >=
  kPunct,       ///< ( ) , * .
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string lexeme;  ///< normalized text (see kind docs)
  size_t position;     ///< byte offset in the input

  bool operator==(const Token& other) const {
    return kind == other.kind && lexeme == other.lexeme;
  }
};

/// Display name of a token kind ("keyword", "identifier", ...).
const char* TokenKindName(TokenKind kind);

/// True if `word` (upper-cased) is a reserved SQL keyword of our grammar.
bool IsKeyword(const std::string& upper_word);

}  // namespace dpe::sql

#endif  // DPE_SQL_TOKEN_H_
