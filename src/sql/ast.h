// Abstract syntax tree for the SQL subset of DESIGN.md §5.3.
//
// The AST is the canonical in-memory form of a query: the lexer/parser build
// it, the printer serializes it back to canonical SQL text, the KIT-DPE log
// encryptor rewrites it (encrypting names and constants in place), and the
// relational executor evaluates it.

#ifndef DPE_SQL_AST_H_
#define DPE_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hex.h"

namespace dpe::sql {

/// Typed SQL constant.
class Literal {
 public:
  enum class Kind { kInt, kDouble, kString };

  Literal() : kind_(Kind::kInt), int_value_(0), double_value_(0) {}
  static Literal Int(int64_t v);
  static Literal Double(double v);
  static Literal String(std::string v);

  Kind kind() const { return kind_; }
  int64_t int_value() const { return int_value_; }
  double double_value() const { return double_value_; }
  const std::string& string_value() const { return string_value_; }

  /// SQL literal text: 42 | 3.14 | 'abc' (with '' quote escaping).
  std::string ToSql() const;

  /// Injective, type-tagged byte encoding ("i:", "d:", "s:" prefixes); the
  /// plaintext fed to DET/PROB constant encryption. Injectivity here is what
  /// makes encrypted token sets bijective images of plaintext token sets.
  Bytes CanonicalBytes() const;

  /// Inverse of CanonicalBytes.
  static Result<Literal> FromCanonicalBytes(std::string_view bytes);

  bool operator==(const Literal& other) const;
  bool operator!=(const Literal& other) const { return !(*this == other); }
  /// Total order: by kind, then value (used in ordered containers).
  bool operator<(const Literal& other) const;

 private:
  Kind kind_;
  int64_t int_value_;
  double double_value_;
  std::string string_value_;
};

/// Possibly-qualified column reference ("r.a" or "a").
struct ColumnRef {
  std::string relation;  ///< empty when unqualified
  std::string name;

  std::string ToSql() const {
    return relation.empty() ? name : relation + "." + name;
  }
  bool operator==(const ColumnRef& other) const {
    return relation == other.relation && name == other.name;
  }
  bool operator<(const ColumnRef& other) const {
    return std::tie(relation, name) < std::tie(other.relation, other.name);
  }
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// "=", "<>", "<", "<=", ">", ">=".
const char* CompareOpSql(CompareOp op);

struct Predicate;
using PredicatePtr = std::unique_ptr<Predicate>;

/// Predicate tree node.
struct Predicate {
  enum class Kind {
    kCompare,        ///< column op literal
    kColumnCompare,  ///< column op column (join predicates)
    kBetween,        ///< column BETWEEN low AND high
    kIn,             ///< column IN (l1, ..., lk)
    kAnd,
    kOr,
    kNot,
  };

  Kind kind;
  ColumnRef column;              // kCompare/kColumnCompare/kBetween/kIn
  CompareOp op = CompareOp::kEq; // kCompare/kColumnCompare
  Literal literal;               // kCompare
  ColumnRef column2;             // kColumnCompare
  Literal low, high;             // kBetween
  std::vector<Literal> in_list;  // kIn
  std::vector<PredicatePtr> children;  // kAnd/kOr (n-ary), kNot (unary)

  static PredicatePtr Compare(ColumnRef c, CompareOp op, Literal l);
  static PredicatePtr ColumnCompare(ColumnRef a, CompareOp op, ColumnRef b);
  static PredicatePtr Between(ColumnRef c, Literal lo, Literal hi);
  static PredicatePtr In(ColumnRef c, std::vector<Literal> values);
  static PredicatePtr And(std::vector<PredicatePtr> children);
  static PredicatePtr Or(std::vector<PredicatePtr> children);
  static PredicatePtr Not(PredicatePtr child);

  PredicatePtr Clone() const;
  bool Equals(const Predicate& other) const;
};

enum class AggFn { kNone, kCount, kSum, kAvg, kMin, kMax };

/// "COUNT", "SUM", ... (empty for kNone).
const char* AggFnSql(AggFn fn);

/// One item of the SELECT list: *, column, or AGG(column) / COUNT(*).
struct SelectItem {
  bool star = false;  ///< SELECT * (agg == kNone) or COUNT(*) (agg == kCount)
  AggFn agg = AggFn::kNone;
  ColumnRef column;

  static SelectItem Star() { return {true, AggFn::kNone, {}}; }
  static SelectItem Col(ColumnRef c) { return {false, AggFn::kNone, std::move(c)}; }
  static SelectItem Agg(AggFn fn, ColumnRef c) { return {false, fn, std::move(c)}; }
  static SelectItem CountStar() { return {true, AggFn::kCount, {}}; }

  bool operator==(const SelectItem& other) const {
    return star == other.star && agg == other.agg && column == other.column;
  }
};

struct TableRef {
  std::string name;
  std::string alias;  ///< empty when none

  bool operator==(const TableRef& other) const {
    return name == other.name && alias == other.alias;
  }
};

/// INNER JOIN <table> ON <left> = <right>.
struct JoinClause {
  TableRef table;
  ColumnRef left;
  ColumnRef right;

  bool operator==(const JoinClause& other) const {
    return table == other.table && left == other.left && right == other.right;
  }
};

struct OrderItem {
  ColumnRef column;
  bool ascending = true;

  bool operator==(const OrderItem& other) const {
    return column == other.column && ascending == other.ascending;
  }
};

/// A SELECT query (the only statement kind in SQL query-log mining).
struct SelectQuery {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  PredicatePtr where;  ///< null when absent
  std::vector<ColumnRef> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  SelectQuery() = default;
  SelectQuery(SelectQuery&&) = default;
  SelectQuery& operator=(SelectQuery&&) = default;
  SelectQuery(const SelectQuery& other) { *this = other.CloneValue(); }
  SelectQuery& operator=(const SelectQuery& other) {
    if (this != &other) *this = other.CloneValue();
    return *this;
  }

  SelectQuery CloneValue() const;
  bool Equals(const SelectQuery& other) const;

  /// All relation names mentioned (FROM + JOINs), in syntactic order.
  std::vector<std::string> Relations() const;

  /// All column refs mentioned anywhere (select list, predicates, group/order).
  std::vector<ColumnRef> Columns() const;
};

}  // namespace dpe::sql

#endif  // DPE_SQL_AST_H_
