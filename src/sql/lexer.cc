#include "sql/lexer.h"

#include <cctype>

#include "common/str.h"

namespace dpe::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentCont(text[j])) ++j;
      std::string word(text.substr(i, j - i));
      std::string upper = ToUpperAscii(word);
      if (IsKeyword(upper)) {
        out.push_back({TokenKind::kKeyword, upper, start});
      } else {
        out.push_back({TokenKind::kIdentifier, ToLowerAscii(word), start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])) &&
         (out.empty() || out.back().kind == TokenKind::kOperator ||
          (out.back().kind == TokenKind::kPunct && out.back().lexeme != ")") ||
          out.back().kind == TokenKind::kKeyword))) {
      // Number: optional leading '-', digits, optional fraction/exponent.
      size_t j = i + (c == '-' ? 1 : 0);
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      if (j < n && (text[j] == 'e' || text[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_float = true;
          ++k;
          while (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) ++k;
          j = k;
        }
      }
      out.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                     std::string(text.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      // String literal; '' escapes a quote.
      size_t j = i + 1;
      std::string lexeme = "'";
      for (;;) {
        if (j >= n) return Status::ParseError("unterminated string literal");
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {
            lexeme += "''";
            j += 2;
            continue;
          }
          lexeme += '\'';
          ++j;
          break;
        }
        lexeme += text[j];
        ++j;
      }
      out.push_back({TokenKind::kString, lexeme, start});
      i = j;
      continue;
    }
    // Operators.
    if (c == '<') {
      if (i + 1 < n && text[i + 1] == '=') {
        out.push_back({TokenKind::kOperator, "<=", start});
        i += 2;
      } else if (i + 1 < n && text[i + 1] == '>') {
        out.push_back({TokenKind::kOperator, "<>", start});
        i += 2;
      } else {
        out.push_back({TokenKind::kOperator, "<", start});
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && text[i + 1] == '=') {
        out.push_back({TokenKind::kOperator, ">=", start});
        i += 2;
      } else {
        out.push_back({TokenKind::kOperator, ">", start});
        ++i;
      }
      continue;
    }
    if (c == '=') {
      out.push_back({TokenKind::kOperator, "=", start});
      ++i;
      continue;
    }
    if (c == '!' && i + 1 < n && text[i + 1] == '=') {
      out.push_back({TokenKind::kOperator, "<>", start});  // normalize != to <>
      i += 2;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '*' || c == '.') {
      out.push_back({TokenKind::kPunct, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  return out;
}

Result<std::set<std::string>> TokenSet(std::string_view text) {
  DPE_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  std::set<std::string> out;
  for (const Token& t : toks) out.insert(t.lexeme);
  return out;
}

}  // namespace dpe::sql
