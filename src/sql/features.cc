#include "sql/features.h"

namespace dpe::sql {

namespace {

std::pair<FeaturePartKind, std::string> AttrPart(const ColumnRef& c) {
  return {FeaturePartKind::kAttribute, c.ToSql()};
}

std::pair<FeaturePartKind, std::string> SymbolPart(std::string s) {
  return {FeaturePartKind::kSymbol, std::move(s)};
}

void CollectWhereFeatures(const Predicate& p, std::set<Feature>* out) {
  switch (p.kind) {
    case Predicate::Kind::kCompare:
      out->insert(
          {"WHERE", {AttrPart(p.column), SymbolPart(CompareOpSql(p.op))}});
      break;
    case Predicate::Kind::kColumnCompare:
      out->insert({"WHERE",
                   {AttrPart(p.column), SymbolPart(CompareOpSql(p.op)),
                    AttrPart(p.column2)}});
      break;
    case Predicate::Kind::kBetween:
      out->insert({"WHERE", {AttrPart(p.column), SymbolPart("BETWEEN")}});
      break;
    case Predicate::Kind::kIn:
      out->insert({"WHERE", {AttrPart(p.column), SymbolPart("IN")}});
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      // Boolean structure is flattened: SnipSuggest features record which
      // attribute/operator shapes occur, not how they nest.
      for (const auto& c : p.children) CollectWhereFeatures(*c, out);
      break;
  }
}

}  // namespace

std::string Feature::ToString() const {
  std::string out = "(" + clause;
  for (const auto& [kind, text] : parts) {
    (void)kind;
    out += ", " + text;
  }
  out += ")";
  return out;
}

std::set<Feature> Features(const SelectQuery& q) {
  std::set<Feature> out;
  if (q.distinct) out.insert({"DISTINCT", {}});
  for (const auto& item : q.items) {
    if (item.agg == AggFn::kNone) {
      if (item.star) {
        out.insert({"SELECT", {SymbolPart("*")}});
      } else {
        out.insert({"SELECT", {AttrPart(item.column)}});
      }
    } else {
      if (item.star) {
        out.insert({"AGG", {SymbolPart(AggFnSql(item.agg)), SymbolPart("*")}});
      } else {
        out.insert(
            {"AGG", {SymbolPart(AggFnSql(item.agg)), AttrPart(item.column)}});
      }
    }
  }
  out.insert({"FROM", {{FeaturePartKind::kRelation, q.from.name}}});
  for (const auto& j : q.joins) {
    out.insert({"FROM", {{FeaturePartKind::kRelation, j.table.name}}});
    out.insert({"JOIN",
                {AttrPart(j.left), SymbolPart("="), AttrPart(j.right)}});
  }
  if (q.where) CollectWhereFeatures(*q.where, &out);
  for (const auto& c : q.group_by) out.insert({"GROUPBY", {AttrPart(c)}});
  for (const auto& o : q.order_by) {
    Feature f{"ORDERBY", {AttrPart(o.column)}};
    if (!o.ascending) f.parts.push_back(SymbolPart("DESC"));
    out.insert(std::move(f));
  }
  // LIMIT presence is structure; its numeric value is a constant and is
  // dropped, like all constants.
  if (q.limit.has_value()) out.insert({"LIMIT", {}});
  return out;
}

}  // namespace dpe::sql
