// Recursive-descent parser for the SQL subset (DESIGN.md §5.3).

#ifndef DPE_SQL_PARSER_H_
#define DPE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace dpe::sql {

/// Parses one SELECT statement; the whole input must be consumed.
Result<SelectQuery> Parse(std::string_view text);

}  // namespace dpe::sql

#endif  // DPE_SQL_PARSER_H_
