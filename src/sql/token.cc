#include "sql/token.h"

#include <unordered_set>

namespace dpe::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kOperator:
      return "operator";
    case TokenKind::kPunct:
      return "punct";
    case TokenKind::kEnd:
      return "end";
  }
  return "?";
}

bool IsKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM", "WHERE",  "AND",   "OR",    "NOT",
      "BETWEEN", "IN",      "JOIN", "ON",     "GROUP", "BY",    "ORDER",
      "ASC",     "DESC",    "LIMIT", "COUNT", "SUM",   "AVG",   "MIN",
      "MAX",     "AS",      "INNER", "NULL"};
  return kKeywords.contains(upper_word);
}

}  // namespace dpe::sql
