#include "sql/parser.h"

#include <charconv>
#include <cstdlib>

#include "sql/lexer.h"

namespace dpe::sql {

namespace {

/// Token-stream cursor with the usual peek/match/expect helpers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool AtEnd() const { return pos_ >= tokens_.size(); }

  const Token& Peek() const {
    static const Token kEnd{TokenKind::kEnd, "", 0};
    return AtEnd() ? kEnd : tokens_[pos_];
  }

  Token Advance() {
    Token t = Peek();
    if (!AtEnd()) ++pos_;
    return t;
  }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().lexeme == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchPunct(std::string_view p) {
    if (Peek().kind == TokenKind::kPunct && Peek().lexeme == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchOperator(std::string_view op) {
    if (Peek().kind == TokenKind::kOperator && Peek().lexeme == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError("expected keyword " + std::string(kw) +
                              ", found '" + Peek().lexeme + "'");
  }

  Status ExpectPunct(std::string_view p) {
    if (MatchPunct(p)) return Status::OK();
    return Status::ParseError("expected '" + std::string(p) + "', found '" +
                              Peek().lexeme + "'");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : cur_(std::move(tokens)) {}

  Result<SelectQuery> ParseSelect() {
    SelectQuery q;
    DPE_RETURN_NOT_OK(cur_.ExpectKeyword("SELECT"));
    q.distinct = cur_.MatchKeyword("DISTINCT");
    DPE_RETURN_NOT_OK(ParseSelectList(&q));
    DPE_RETURN_NOT_OK(cur_.ExpectKeyword("FROM"));
    DPE_ASSIGN_OR_RETURN(q.from, ParseTableRef());
    while (cur_.MatchKeyword("INNER") || Peek("JOIN")) {
      DPE_RETURN_NOT_OK(cur_.ExpectKeyword("JOIN"));
      JoinClause j;
      DPE_ASSIGN_OR_RETURN(j.table, ParseTableRef());
      DPE_RETURN_NOT_OK(cur_.ExpectKeyword("ON"));
      DPE_ASSIGN_OR_RETURN(j.left, ParseColumnRef());
      if (!cur_.MatchOperator("=")) {
        return Status::ParseError("JOIN condition must be an equality");
      }
      DPE_ASSIGN_OR_RETURN(j.right, ParseColumnRef());
      q.joins.push_back(std::move(j));
    }
    if (cur_.MatchKeyword("WHERE")) {
      DPE_ASSIGN_OR_RETURN(q.where, ParseOr());
    }
    if (cur_.MatchKeyword("GROUP")) {
      DPE_RETURN_NOT_OK(cur_.ExpectKeyword("BY"));
      do {
        DPE_ASSIGN_OR_RETURN(ColumnRef c, ParseColumnRef());
        q.group_by.push_back(std::move(c));
      } while (cur_.MatchPunct(","));
    }
    if (cur_.MatchKeyword("ORDER")) {
      DPE_RETURN_NOT_OK(cur_.ExpectKeyword("BY"));
      do {
        OrderItem item;
        DPE_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        if (cur_.MatchKeyword("DESC")) {
          item.ascending = false;
        } else {
          cur_.MatchKeyword("ASC");
        }
        q.order_by.push_back(std::move(item));
      } while (cur_.MatchPunct(","));
    }
    if (cur_.MatchKeyword("LIMIT")) {
      const Token t = cur_.Advance();
      if (t.kind != TokenKind::kInteger) {
        return Status::ParseError("LIMIT expects an integer");
      }
      q.limit = std::strtoll(t.lexeme.c_str(), nullptr, 10);
    }
    if (!cur_.AtEnd()) {
      return Status::ParseError("trailing tokens after query: '" +
                                cur_.Peek().lexeme + "'");
    }
    return q;
  }

 private:
  bool Peek(std::string_view kw) const {
    return cur_.Peek().kind == TokenKind::kKeyword && cur_.Peek().lexeme == kw;
  }

  static bool IsAggKeyword(const std::string& kw, AggFn* fn) {
    if (kw == "COUNT") *fn = AggFn::kCount;
    else if (kw == "SUM") *fn = AggFn::kSum;
    else if (kw == "AVG") *fn = AggFn::kAvg;
    else if (kw == "MIN") *fn = AggFn::kMin;
    else if (kw == "MAX") *fn = AggFn::kMax;
    else return false;
    return true;
  }

  Status ParseSelectList(SelectQuery* q) {
    do {
      SelectItem item;
      AggFn fn = AggFn::kNone;
      if (cur_.Peek().kind == TokenKind::kKeyword &&
          IsAggKeyword(cur_.Peek().lexeme, &fn)) {
        cur_.Advance();
        DPE_RETURN_NOT_OK(cur_.ExpectPunct("("));
        if (cur_.MatchPunct("*")) {
          if (fn != AggFn::kCount) {
            return Status::ParseError("only COUNT may take *");
          }
          item = SelectItem::CountStar();
        } else {
          DPE_ASSIGN_OR_RETURN(ColumnRef c, ParseColumnRef());
          item = SelectItem::Agg(fn, std::move(c));
        }
        DPE_RETURN_NOT_OK(cur_.ExpectPunct(")"));
      } else if (cur_.MatchPunct("*")) {
        item = SelectItem::Star();
      } else {
        DPE_ASSIGN_OR_RETURN(ColumnRef c, ParseColumnRef());
        item = SelectItem::Col(std::move(c));
      }
      q->items.push_back(std::move(item));
    } while (cur_.MatchPunct(","));
    if (q->items.empty()) return Status::ParseError("empty select list");
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    const Token t = cur_.Advance();
    if (t.kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected relation name, found '" + t.lexeme +
                                "'");
    }
    TableRef ref;
    ref.name = t.lexeme;
    if (cur_.MatchKeyword("AS")) {
      const Token a = cur_.Advance();
      if (a.kind != TokenKind::kIdentifier) {
        return Status::ParseError("expected alias after AS");
      }
      ref.alias = a.lexeme;
    } else if (cur_.Peek().kind == TokenKind::kIdentifier) {
      ref.alias = cur_.Advance().lexeme;
    }
    return ref;
  }

  Result<ColumnRef> ParseColumnRef() {
    const Token t = cur_.Advance();
    if (t.kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected column name, found '" + t.lexeme +
                                "'");
    }
    ColumnRef c;
    c.name = t.lexeme;
    if (cur_.MatchPunct(".")) {
      const Token n = cur_.Advance();
      if (n.kind != TokenKind::kIdentifier) {
        return Status::ParseError("expected column after '.'");
      }
      c.relation = t.lexeme;
      c.name = n.lexeme;
    }
    return c;
  }

  Result<Literal> ParseLiteral() {
    const Token t = cur_.Advance();
    switch (t.kind) {
      case TokenKind::kInteger: {
        int64_t v = 0;
        auto [ptr, ec] =
            std::from_chars(t.lexeme.data(), t.lexeme.data() + t.lexeme.size(), v);
        if (ec != std::errc()) {
          return Status::ParseError("integer literal out of range: " + t.lexeme);
        }
        (void)ptr;
        return Literal::Int(v);
      }
      case TokenKind::kFloat:
        return Literal::Double(std::strtod(t.lexeme.c_str(), nullptr));
      case TokenKind::kString: {
        // Strip quotes, un-escape ''.
        std::string body;
        for (size_t i = 1; i + 1 < t.lexeme.size(); ++i) {
          if (t.lexeme[i] == '\'' && i + 2 < t.lexeme.size() &&
              t.lexeme[i + 1] == '\'') {
            body += '\'';
            ++i;
          } else {
            body += t.lexeme[i];
          }
        }
        return Literal::String(std::move(body));
      }
      default:
        return Status::ParseError("expected literal, found '" + t.lexeme + "'");
    }
  }

  Result<PredicatePtr> ParseOr() {
    DPE_ASSIGN_OR_RETURN(PredicatePtr first, ParseAnd());
    if (!Peek("OR")) return first;
    std::vector<PredicatePtr> children;
    children.push_back(std::move(first));
    while (cur_.MatchKeyword("OR")) {
      DPE_ASSIGN_OR_RETURN(PredicatePtr next, ParseAnd());
      children.push_back(std::move(next));
    }
    return Predicate::Or(std::move(children));
  }

  Result<PredicatePtr> ParseAnd() {
    DPE_ASSIGN_OR_RETURN(PredicatePtr first, ParseUnary());
    if (!Peek("AND")) return first;
    std::vector<PredicatePtr> children;
    children.push_back(std::move(first));
    while (cur_.MatchKeyword("AND")) {
      DPE_ASSIGN_OR_RETURN(PredicatePtr next, ParseUnary());
      children.push_back(std::move(next));
    }
    return Predicate::And(std::move(children));
  }

  Result<PredicatePtr> ParseUnary() {
    if (cur_.MatchKeyword("NOT")) {
      DPE_ASSIGN_OR_RETURN(PredicatePtr child, ParseUnary());
      return Predicate::Not(std::move(child));
    }
    if (cur_.MatchPunct("(")) {
      DPE_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
      DPE_RETURN_NOT_OK(cur_.ExpectPunct(")"));
      return inner;
    }
    return ParseAtom();
  }

  Result<PredicatePtr> ParseAtom() {
    DPE_ASSIGN_OR_RETURN(ColumnRef c, ParseColumnRef());
    if (cur_.MatchKeyword("BETWEEN")) {
      DPE_ASSIGN_OR_RETURN(Literal lo, ParseLiteral());
      DPE_RETURN_NOT_OK(cur_.ExpectKeyword("AND"));
      DPE_ASSIGN_OR_RETURN(Literal hi, ParseLiteral());
      return Predicate::Between(std::move(c), std::move(lo), std::move(hi));
    }
    if (cur_.MatchKeyword("IN")) {
      DPE_RETURN_NOT_OK(cur_.ExpectPunct("("));
      std::vector<Literal> values;
      do {
        DPE_ASSIGN_OR_RETURN(Literal v, ParseLiteral());
        values.push_back(std::move(v));
      } while (cur_.MatchPunct(","));
      DPE_RETURN_NOT_OK(cur_.ExpectPunct(")"));
      return Predicate::In(std::move(c), std::move(values));
    }
    const Token opt = cur_.Advance();
    if (opt.kind != TokenKind::kOperator) {
      return Status::ParseError("expected comparison operator, found '" +
                                opt.lexeme + "'");
    }
    CompareOp op;
    if (opt.lexeme == "=") op = CompareOp::kEq;
    else if (opt.lexeme == "<>") op = CompareOp::kNe;
    else if (opt.lexeme == "<") op = CompareOp::kLt;
    else if (opt.lexeme == "<=") op = CompareOp::kLe;
    else if (opt.lexeme == ">") op = CompareOp::kGt;
    else if (opt.lexeme == ">=") op = CompareOp::kGe;
    else return Status::ParseError("unknown operator " + opt.lexeme);
    // Column-vs-column or column-vs-literal.
    if (cur_.Peek().kind == TokenKind::kIdentifier) {
      DPE_ASSIGN_OR_RETURN(ColumnRef rhs, ParseColumnRef());
      return Predicate::ColumnCompare(std::move(c), op, std::move(rhs));
    }
    DPE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    return Predicate::Compare(std::move(c), op, std::move(lit));
  }

  Cursor cur_;
};

}  // namespace

Result<SelectQuery> Parse(std::string_view text) {
  DPE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace dpe::sql
