#include "sql/printer.h"

#include "common/str.h"

namespace dpe::sql {

namespace {

void PrintPredicate(const Predicate& p, bool parenthesize_compound,
                    std::string* out) {
  switch (p.kind) {
    case Predicate::Kind::kCompare:
      *out += p.column.ToSql();
      *out += " ";
      *out += CompareOpSql(p.op);
      *out += " ";
      *out += p.literal.ToSql();
      break;
    case Predicate::Kind::kColumnCompare:
      *out += p.column.ToSql();
      *out += " ";
      *out += CompareOpSql(p.op);
      *out += " ";
      *out += p.column2.ToSql();
      break;
    case Predicate::Kind::kBetween:
      *out += p.column.ToSql();
      *out += " BETWEEN ";
      *out += p.low.ToSql();
      *out += " AND ";
      *out += p.high.ToSql();
      break;
    case Predicate::Kind::kIn: {
      *out += p.column.ToSql();
      *out += " IN (";
      for (size_t i = 0; i < p.in_list.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += p.in_list[i].ToSql();
      }
      *out += ")";
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      const char* sep = p.kind == Predicate::Kind::kAnd ? " AND " : " OR ";
      if (parenthesize_compound) *out += "(";
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i > 0) *out += sep;
        // Children that are themselves compound get parentheses so the
        // printed text re-parses to the identical tree.
        PrintPredicate(*p.children[i], /*parenthesize_compound=*/true, out);
      }
      if (parenthesize_compound) *out += ")";
      break;
    }
    case Predicate::Kind::kNot:
      *out += "NOT ";
      PrintPredicate(*p.children[0], /*parenthesize_compound=*/true, out);
      break;
  }
}

std::string SelectItemSql(const SelectItem& item) {
  if (item.agg == AggFn::kNone) {
    return item.star ? "*" : item.column.ToSql();
  }
  std::string inner = item.star ? "*" : item.column.ToSql();
  return std::string(AggFnSql(item.agg)) + "(" + inner + ")";
}

}  // namespace

std::string ToSql(const Predicate& predicate) {
  std::string out;
  PrintPredicate(predicate, /*parenthesize_compound=*/false, &out);
  return out;
}

std::string ToSql(const SelectQuery& q) {
  std::string out = "SELECT ";
  if (q.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < q.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += SelectItemSql(q.items[i]);
  }
  out += " FROM ";
  out += q.from.name;
  if (!q.from.alias.empty()) out += " " + q.from.alias;
  for (const auto& j : q.joins) {
    out += " JOIN ";
    out += j.table.name;
    if (!j.table.alias.empty()) out += " " + j.table.alias;
    out += " ON " + j.left.ToSql() + " = " + j.right.ToSql();
  }
  if (q.where) {
    out += " WHERE ";
    out += ToSql(*q.where);
  }
  if (!q.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < q.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += q.group_by[i].ToSql();
    }
  }
  if (!q.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += q.order_by[i].column.ToSql();
      if (!q.order_by[i].ascending) out += " DESC";
    }
  }
  if (q.limit.has_value()) {
    out += " LIMIT " + std::to_string(*q.limit);
  }
  return out;
}

}  // namespace dpe::sql
