// Canonical SQL serialization of the AST. Print(Parse(Print(q))) == Print(q)
// (round-trip property, tested), and tokens(Print(q)) is the token-set
// characteristic used by the token-based distance measure.

#ifndef DPE_SQL_PRINTER_H_
#define DPE_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace dpe::sql {

/// Canonical SQL text of a query.
std::string ToSql(const SelectQuery& query);

/// Canonical SQL text of a predicate (exposed for tests/debugging).
std::string ToSql(const Predicate& predicate);

}  // namespace dpe::sql

#endif  // DPE_SQL_PRINTER_H_
