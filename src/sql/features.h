// Query-structure features, following SnipSuggest ([15] in the paper) and
// the paper's Example 5:
//
//   Q = SELECT A1 FROM R WHERE A2 > 5
//   features(Q) = {(SELECT, A1), (FROM, R), (WHERE, A2 >)}
//
// Features deliberately DROP all constants — which is exactly why the
// structural-equivalence scheme may encrypt constants with PROB (Table I).
//
// Parts are *tagged* (relation / attribute / operator / ...) so that the
// c-equivalence checker can apply the high-level encryption scheme to a
// feature set directly: Enc((WHERE, A2 >)) = (WHERE, EncAttr(A2) >).

#ifndef DPE_SQL_FEATURES_H_
#define DPE_SQL_FEATURES_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sql/ast.h"

namespace dpe::sql {

/// What a feature part refers to; determines which Enc function applies.
enum class FeaturePartKind {
  kRelation,   ///< a relation name (EncRel applies)
  kAttribute,  ///< an attribute name, possibly "rel.attr" (EncAttr applies)
  kSymbol,     ///< operator / marker text, never encrypted ('>', 'BETWEEN')
};

/// One structural feature: a clause tag plus tagged parts.
struct Feature {
  std::string clause;  ///< SELECT | AGG | FROM | JOIN | WHERE | GROUPBY |
                       ///< ORDERBY | DISTINCT | LIMIT
  std::vector<std::pair<FeaturePartKind, std::string>> parts;

  /// Display / set-element form, e.g. "(WHERE, a2 >)".
  std::string ToString() const;

  bool operator==(const Feature& other) const {
    return clause == other.clause && parts == other.parts;
  }
  bool operator<(const Feature& other) const {
    return std::tie(clause, parts) < std::tie(other.clause, other.parts);
  }
};

/// The feature-set characteristic c = features of structural equivalence.
std::set<Feature> Features(const SelectQuery& query);

}  // namespace dpe::sql

#endif  // DPE_SQL_FEATURES_H_
