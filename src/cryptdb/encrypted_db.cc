#include "cryptdb/encrypted_db.h"

#include "common/hex.h"
#include "common/str.h"
#include "crypto/instrument.h"

namespace dpe::cryptdb {

using crypto::Bigint;
using crypto::Paillier;
using db::ColumnType;
using db::Value;

Result<CryptDb> CryptDb::Build(const db::Database& plain,
                               const OnionLayout& layout,
                               const crypto::KeyManager& keys,
                               const Options& options, crypto::Csprng rng) {
  DPE_ASSIGN_OR_RETURN(
      OnionCrypto crypto,
      OnionCrypto::Create(keys, layout, options.crypto, std::move(rng)));
  auto crypto_ptr = std::make_unique<OnionCrypto>(std::move(crypto));

  db::Database encrypted;
  SchemaMap schemas;
  for (const std::string& rel : plain.TableNames()) {
    DPE_ASSIGN_OR_RETURN(const db::Table* table, plain.GetTable(rel));
    schemas[rel] = table->schema();

    // Build the encrypted schema: per column, one string column per onion.
    std::vector<db::ColumnDef> enc_columns;
    struct ColumnPlan {
      size_t plain_index;
      std::string column_key;
      char onion;  // 'e','o','h','p'
    };
    std::vector<ColumnPlan> plan;
    const auto& cols = table->schema().columns();
    for (size_t i = 0; i < cols.size(); ++i) {
      const std::string key = rel + "." + cols[i].name;
      const std::string enc_attr = crypto_ptr->EncryptAttrName(cols[i].name);
      ColumnOnionConfig cfg = crypto_ptr->layout().ConfigFor(key);
      if (cfg.eq) {
        enc_columns.push_back({enc_attr + kEqSuffix, ColumnType::kString});
        plan.push_back({i, key, 'e'});
      }
      if (cfg.ord) {
        enc_columns.push_back({enc_attr + kOrdSuffix, ColumnType::kString});
        plan.push_back({i, key, 'o'});
      }
      if (cfg.add) {
        enc_columns.push_back({enc_attr + kAddSuffix, ColumnType::kString});
        plan.push_back({i, key, 'h'});
      }
      if (cfg.rnd_only() || options.materialize_rnd_for_all) {
        enc_columns.push_back({enc_attr + kRndSuffix, ColumnType::kString});
        plan.push_back({i, key, 'p'});
      }
    }

    db::Table enc_table(crypto_ptr->EncryptRelName(rel),
                        db::TableSchema(std::move(enc_columns)));
    for (const db::Row& row : table->rows()) {
      db::Row enc_row;
      enc_row.reserve(plan.size());
      for (const ColumnPlan& p : plan) {
        const Value& v = row[p.plain_index];
        switch (p.onion) {
          case 'e': {
            DPE_ASSIGN_OR_RETURN(Value c, crypto_ptr->EncryptEq(p.column_key, v));
            enc_row.push_back(std::move(c));
            break;
          }
          case 'o': {
            DPE_ASSIGN_OR_RETURN(Value c, crypto_ptr->EncryptOrd(p.column_key, v));
            enc_row.push_back(std::move(c));
            break;
          }
          case 'h': {
            DPE_ASSIGN_OR_RETURN(Value c, crypto_ptr->EncryptAdd(p.column_key, v));
            enc_row.push_back(std::move(c));
            break;
          }
          case 'p': {
            DPE_ASSIGN_OR_RETURN(Value c, crypto_ptr->EncryptRnd(p.column_key, v));
            enc_row.push_back(std::move(c));
            break;
          }
          default:
            return Status::Internal("bad onion plan");
        }
      }
      DPE_RETURN_NOT_OK(enc_table.Append(std::move(enc_row)));
    }
    DPE_RETURN_NOT_OK(encrypted.CreateTable(std::move(enc_table)));
  }

  return CryptDb(std::move(crypto_ptr), std::move(encrypted),
                 std::move(schemas));
}

Result<sql::SelectQuery> CryptDb::Rewrite(const sql::SelectQuery& query) const {
  QueryRewriter rewriter(crypto_.get(), &schemas_);
  return rewriter.Rewrite(query);
}

db::ExecuteOptions CryptDb::ProviderOptions() const {
  db::ExecuteOptions options;
  const Paillier::PublicKey& pub = crypto_->paillier_pub();
  options.agg_hook = [pub](sql::AggFn fn, const std::string& column_name,
                           const std::vector<Value>& values)
      -> std::optional<Value> {
    // Only SUM/AVG over an ADD-onion column use Paillier folding.
    if (fn != sql::AggFn::kSum && fn != sql::AggFn::kAvg) return std::nullopt;
    if (!column_name.ends_with(kAddSuffix)) return std::nullopt;
    // This is the crypto cost of encrypted result-measure builds: one fold
    // per aggregate row group, each a chain of Paillier::Add calls.
    DPE_CRYPTO_COUNT("cryptdb", "agg_fold");
    crypto::CryptoSpan fold_span("cryptdb.agg_fold");
    Bigint acc;
    bool any = false;
    size_t count = 0;
    for (const Value& v : values) {
      if (v.is_null()) continue;
      if (!v.is_string() || v.string_value().empty() ||
          v.string_value()[0] != 'h') {
        return std::nullopt;  // malformed; let the default path error out
      }
      auto bytes = HexDecode(std::string_view(v.string_value()).substr(1));
      if (!bytes.ok()) return std::nullopt;
      Bigint ct = Bigint::FromBytes(*bytes);
      acc = any ? Paillier::Add(pub, acc, ct) : ct;
      any = true;
      ++count;
    }
    if (!any) return Value::Null();  // SQL: SUM/AVG over empty -> NULL
    std::string cell = "h" + HexEncode(acc.ToBytes());
    if (fn == sql::AggFn::kAvg) {
      cell += "|" + std::to_string(count);  // owner divides after decryption
    }
    return Value::String(std::move(cell));
  };
  return options;
}

Result<db::ResultTable> CryptDb::ExecuteEncrypted(
    const sql::SelectQuery& enc_query) const {
  return db::Execute(encrypted_, enc_query, ProviderOptions());
}

namespace {

/// The plaintext (relation, attribute, type) of each output column of
/// `plain_query`, with SELECT * expanded; agg items keep their AggFn.
struct OutputColumn {
  sql::AggFn agg = sql::AggFn::kNone;
  bool count_star = false;
  std::string relation;
  std::string attribute;
  ColumnType type = ColumnType::kString;
};

Result<std::vector<OutputColumn>> PlanOutput(const sql::SelectQuery& q,
                                             const SchemaMap& schemas) {
  // Alias resolution.
  std::map<std::string, std::string> qual_to_rel;
  std::vector<std::string> rels;
  auto add_rel = [&](const sql::TableRef& t) {
    rels.push_back(t.name);
    qual_to_rel[t.name] = t.name;
    if (!t.alias.empty()) qual_to_rel[t.alias] = t.name;
  };
  add_rel(q.from);
  for (const auto& j : q.joins) add_rel(j.table);

  auto resolve = [&](const sql::ColumnRef& c) -> Result<std::pair<std::string, ColumnType>> {
    std::vector<std::string> candidates;
    if (!c.relation.empty()) {
      auto it = qual_to_rel.find(c.relation);
      if (it == qual_to_rel.end()) {
        return Status::ExecutionError("unknown qualifier " + c.relation);
      }
      candidates.push_back(it->second);
    } else {
      candidates = rels;
    }
    for (const std::string& rel : candidates) {
      auto sit = schemas.find(rel);
      if (sit == schemas.end()) continue;
      auto idx = sit->second.Find(c.name);
      if (idx.has_value()) {
        return std::make_pair(rel, sit->second.columns()[*idx].type);
      }
    }
    return Status::ExecutionError("cannot resolve column " + c.ToSql());
  };

  std::vector<OutputColumn> out;
  for (const auto& item : q.items) {
    if (item.star && item.agg == sql::AggFn::kNone) {
      for (const std::string& rel : rels) {
        auto sit = schemas.find(rel);
        if (sit == schemas.end()) {
          return Status::ExecutionError("unknown relation " + rel);
        }
        for (const auto& col : sit->second.columns()) {
          out.push_back({sql::AggFn::kNone, false, rel, col.name, col.type});
        }
      }
      continue;
    }
    if (item.star && item.agg == sql::AggFn::kCount) {
      out.push_back({sql::AggFn::kCount, true, "", "", ColumnType::kInt});
      continue;
    }
    DPE_ASSIGN_OR_RETURN(auto rel_type, resolve(item.column));
    out.push_back({item.agg, false, rel_type.first, item.column.name,
                   rel_type.second});
  }
  return out;
}

}  // namespace

Result<db::ResultTable> CryptDb::DecryptResult(
    const sql::SelectQuery& plain_query,
    const db::ResultTable& enc_result) const {
  DPE_ASSIGN_OR_RETURN(std::vector<OutputColumn> plan,
                       PlanOutput(plain_query, schemas_));
  db::ResultTable out;
  for (const auto& col : plan) {
    if (col.agg == sql::AggFn::kNone) {
      out.column_names.push_back(col.relation + "." + col.attribute);
    } else if (col.count_star) {
      out.column_names.push_back("COUNT(*)");
    } else {
      out.column_names.push_back(std::string(sql::AggFnSql(col.agg)) + "(" +
                                 col.relation + "." + col.attribute + ")");
    }
    switch (col.agg) {
      case sql::AggFn::kNone:
        out.column_kinds.push_back(db::OutputKind::kPlain);
        break;
      case sql::AggFn::kCount:
        out.column_kinds.push_back(db::OutputKind::kCount);
        break;
      case sql::AggFn::kSum:
        out.column_kinds.push_back(db::OutputKind::kSum);
        break;
      case sql::AggFn::kAvg:
        out.column_kinds.push_back(db::OutputKind::kAvg);
        break;
      case sql::AggFn::kMin:
      case sql::AggFn::kMax:
        out.column_kinds.push_back(db::OutputKind::kMinMax);
        break;
    }
  }

  for (const db::Row& row : enc_result.rows) {
    if (row.size() != plan.size()) {
      return Status::Internal("encrypted result arity mismatch: " +
                              std::to_string(row.size()) + " vs plan " +
                              std::to_string(plan.size()));
    }
    db::Row prow;
    prow.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      const OutputColumn& col = plan[i];
      const Value& cell = row[i];
      if (cell.is_null()) {
        prow.push_back(Value::Null());
        continue;
      }
      const std::string key = col.relation + "." + col.attribute;
      switch (col.agg) {
        case sql::AggFn::kNone:
        case sql::AggFn::kMin:
        case sql::AggFn::kMax: {
          DPE_ASSIGN_OR_RETURN(Value v,
                               crypto_->DecryptCell(key, col.type, cell));
          prow.push_back(std::move(v));
          break;
        }
        case sql::AggFn::kCount:
          prow.push_back(cell);  // counts are carried in the clear
          break;
        case sql::AggFn::kSum: {
          DPE_ASSIGN_OR_RETURN(int64_t v, crypto_->DecryptPaillierSum(cell));
          prow.push_back(Value::Int(v));
          break;
        }
        case sql::AggFn::kAvg: {
          // "h<hex>|<count>".
          if (!cell.is_string()) {
            return Status::CryptoError("AVG cell must be a string");
          }
          const std::string& s = cell.string_value();
          size_t bar = s.rfind('|');
          if (bar == std::string::npos) {
            return Status::CryptoError("AVG cell missing count: " + s);
          }
          DPE_ASSIGN_OR_RETURN(
              int64_t sum,
              crypto_->DecryptPaillierSum(Value::String(s.substr(0, bar))));
          int64_t count = std::strtoll(s.c_str() + bar + 1, nullptr, 10);
          if (count <= 0) return Status::CryptoError("AVG count invalid");
          prow.push_back(Value::Double(static_cast<double>(sum) /
                                       static_cast<double>(count)));
          break;
        }
      }
    }
    out.rows.push_back(std::move(prow));
  }
  return out;
}

Result<db::DomainRegistry> CryptDb::EncryptDomains(
    const db::DomainRegistry& plain) const {
  db::DomainRegistry out;
  for (const auto& [key, domain] : plain.all()) {
    DPE_ASSIGN_OR_RETURN(Value lo, crypto_->EncryptOrd(key, domain.min));
    DPE_ASSIGN_OR_RETURN(Value hi, crypto_->EncryptOrd(key, domain.max));
    out.Set(EncryptColumnKey(key), db::Domain{std::move(lo), std::move(hi)});
  }
  return out;
}

std::string CryptDb::EncryptColumnKey(const std::string& column_key) const {
  auto parts = Split(column_key, '.');
  if (parts.size() != 2) return column_key;
  return crypto_->EncryptRelName(parts[0]) + "." +
         crypto_->EncryptAttrName(parts[1]);
}

}  // namespace dpe::cryptdb
