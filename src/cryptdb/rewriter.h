// Plain-AST -> encrypted-AST query rewriting (the CryptDB proxy's job).
//
// Identifier mapping: relations/attributes via DET name encryption; each
// column reference additionally picks the onion its operator class needs:
//
//   =, <>, IN, GROUP BY, projection          -> <attr>__eq   (DET constants)
//   <, <=, >, >=, BETWEEN, ORDER BY, MIN/MAX -> <attr>__ord  (OPE constants)
//   SUM, AVG                                 -> <attr>__add  (Paillier)
//   projection of a RND-only column          -> <attr>__rnd
//
// Constants are coerced to the plaintext column type first (int literal 5
// against a DOUBLE column encrypts as 5.0), so encrypted equality matches
// exactly where plaintext SQL equality matched.

#ifndef DPE_CRYPTDB_REWRITER_H_
#define DPE_CRYPTDB_REWRITER_H_

#include <map>
#include <string>

#include "cryptdb/onion.h"
#include "db/schema.h"
#include "sql/ast.h"

namespace dpe::cryptdb {

/// Plaintext schema catalog the rewriter consults for types/star expansion.
using SchemaMap = std::map<std::string, db::TableSchema>;

class QueryRewriter {
 public:
  QueryRewriter(const OnionCrypto* crypto, const SchemaMap* schemas)
      : crypto_(crypto), schemas_(schemas) {}

  /// Rewrites a plaintext query for execution over the encrypted database.
  Result<sql::SelectQuery> Rewrite(const sql::SelectQuery& query) const;

 private:
  struct Scope;  // alias resolution for one query

  Result<sql::ColumnRef> RewriteColumn(const sql::ColumnRef& c,
                                       const char* onion_suffix,
                                       const Scope& scope) const;
  Result<sql::PredicatePtr> RewritePredicate(const sql::Predicate& p,
                                             const Scope& scope) const;
  Result<sql::Literal> EncryptConstEq(const std::string& column_key,
                                      db::ColumnType type,
                                      const sql::Literal& lit) const;
  Result<sql::Literal> EncryptConstOrd(const std::string& column_key,
                                       db::ColumnType type,
                                       const sql::Literal& lit) const;

  const OnionCrypto* crypto_;
  const SchemaMap* schemas_;
};

/// Coerces a literal to a column type (int -> double widening only).
Result<sql::Literal> CoerceLiteral(db::ColumnType type, const sql::Literal& lit);

}  // namespace dpe::cryptdb

#endif  // DPE_CRYPTDB_REWRITER_H_
