#include "cryptdb/rewriter.h"

#include "common/hex.h"
#include "crypto/instrument.h"

namespace dpe::cryptdb {

using db::ColumnType;
using sql::ColumnRef;
using sql::Literal;
using sql::Predicate;
using sql::PredicatePtr;
using sql::SelectQuery;

Result<Literal> CoerceLiteral(ColumnType type, const Literal& lit) {
  switch (type) {
    case ColumnType::kInt:
      if (lit.kind() != Literal::Kind::kInt) {
        return Status::TypeError("expected int constant, got " + lit.ToSql());
      }
      return lit;
    case ColumnType::kDouble:
      if (lit.kind() == Literal::Kind::kInt) {
        return Literal::Double(static_cast<double>(lit.int_value()));
      }
      if (lit.kind() != Literal::Kind::kDouble) {
        return Status::TypeError("expected numeric constant, got " + lit.ToSql());
      }
      return lit;
    case ColumnType::kString:
      if (lit.kind() != Literal::Kind::kString) {
        return Status::TypeError("expected string constant, got " + lit.ToSql());
      }
      return lit;
  }
  return Status::Internal("bad column type");
}

/// Maps qualifiers (alias or relation name) back to relation names and
/// resolves unqualified attributes for single-relation queries.
struct QueryRewriter::Scope {
  std::map<std::string, std::string> qualifier_to_relation;
  std::vector<std::string> relations;  // syntactic order

  explicit Scope(const SelectQuery& q) {
    Add(q.from);
    for (const auto& j : q.joins) Add(j.table);
  }

  void Add(const sql::TableRef& t) {
    relations.push_back(t.name);
    qualifier_to_relation[t.name] = t.name;
    if (!t.alias.empty()) qualifier_to_relation[t.alias] = t.name;
  }

  Result<std::string> RelationOf(const ColumnRef& c) const {
    if (!c.relation.empty()) {
      auto it = qualifier_to_relation.find(c.relation);
      if (it == qualifier_to_relation.end()) {
        return Status::ExecutionError("unknown qualifier " + c.relation);
      }
      return it->second;
    }
    if (relations.size() == 1) return relations.front();
    return Status::ExecutionError("unqualified column " + c.name +
                                  " in multi-relation query");
  }
};

namespace {

Result<ColumnType> TypeOf(const SchemaMap& schemas, const std::string& relation,
                          const std::string& attr) {
  auto it = schemas.find(relation);
  if (it == schemas.end()) {
    return Status::NotFound("unknown relation " + relation);
  }
  auto idx = it->second.Find(attr);
  if (!idx.has_value()) {
    return Status::NotFound("unknown column " + relation + "." + attr);
  }
  return it->second.columns()[*idx].type;
}

}  // namespace

Result<ColumnRef> QueryRewriter::RewriteColumn(const ColumnRef& c,
                                               const char* onion_suffix,
                                               const Scope& scope) const {
  DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(c));
  ColumnRef out;
  // Keep the original qualifier structure: qualified stays qualified (with
  // the encrypted alias/relation text), unqualified stays unqualified.
  if (!c.relation.empty()) {
    out.relation = crypto_->EncryptRelName(c.relation);
  }
  out.name = crypto_->EncryptAttrName(c.name) + onion_suffix;
  (void)rel;
  return out;
}

Result<Literal> QueryRewriter::EncryptConstEq(const std::string& column_key,
                                              ColumnType type,
                                              const Literal& lit) const {
  DPE_ASSIGN_OR_RETURN(Literal coerced, CoerceLiteral(type, lit));
  obs::MetricsRegistry::Default()
      .counter("cryptdb.consts_encrypted", {{"onion", "eq"}})
      .Increment();
  DPE_ASSIGN_OR_RETURN(
      db::Value cell,
      crypto_->EncryptEq(column_key, db::Value::FromLiteral(coerced)));
  return Literal::String(cell.string_value());
}

Result<Literal> QueryRewriter::EncryptConstOrd(const std::string& column_key,
                                               ColumnType type,
                                               const Literal& lit) const {
  DPE_ASSIGN_OR_RETURN(Literal coerced, CoerceLiteral(type, lit));
  obs::MetricsRegistry::Default()
      .counter("cryptdb.consts_encrypted", {{"onion", "ord"}})
      .Increment();
  DPE_ASSIGN_OR_RETURN(
      db::Value cell,
      crypto_->EncryptOrd(column_key, db::Value::FromLiteral(coerced)));
  return Literal::String(cell.string_value());
}

Result<PredicatePtr> QueryRewriter::RewritePredicate(const Predicate& p,
                                                     const Scope& scope) const {
  using Kind = Predicate::Kind;
  switch (p.kind) {
    case Kind::kCompare: {
      DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(p.column));
      const std::string key = rel + "." + p.column.name;
      DPE_ASSIGN_OR_RETURN(ColumnType type, TypeOf(*schemas_, rel, p.column.name));
      const bool equality =
          p.op == sql::CompareOp::kEq || p.op == sql::CompareOp::kNe;
      const char* suffix = equality ? kEqSuffix : kOrdSuffix;
      DPE_ASSIGN_OR_RETURN(ColumnRef col, RewriteColumn(p.column, suffix, scope));
      DPE_ASSIGN_OR_RETURN(Literal lit,
                           equality ? EncryptConstEq(key, type, p.literal)
                                    : EncryptConstOrd(key, type, p.literal));
      return Predicate::Compare(std::move(col), p.op, std::move(lit));
    }
    case Kind::kColumnCompare: {
      if (p.op != sql::CompareOp::kEq) {
        return Status::Unimplemented(
            "encrypted column-column comparison supports only equality");
      }
      DPE_ASSIGN_OR_RETURN(ColumnRef a, RewriteColumn(p.column, kEqSuffix, scope));
      DPE_ASSIGN_OR_RETURN(ColumnRef b, RewriteColumn(p.column2, kEqSuffix, scope));
      return Predicate::ColumnCompare(std::move(a), p.op, std::move(b));
    }
    case Kind::kBetween: {
      DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(p.column));
      const std::string key = rel + "." + p.column.name;
      DPE_ASSIGN_OR_RETURN(ColumnType type, TypeOf(*schemas_, rel, p.column.name));
      DPE_ASSIGN_OR_RETURN(ColumnRef col, RewriteColumn(p.column, kOrdSuffix, scope));
      DPE_ASSIGN_OR_RETURN(Literal lo, EncryptConstOrd(key, type, p.low));
      DPE_ASSIGN_OR_RETURN(Literal hi, EncryptConstOrd(key, type, p.high));
      return Predicate::Between(std::move(col), std::move(lo), std::move(hi));
    }
    case Kind::kIn: {
      DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(p.column));
      const std::string key = rel + "." + p.column.name;
      DPE_ASSIGN_OR_RETURN(ColumnType type, TypeOf(*schemas_, rel, p.column.name));
      DPE_ASSIGN_OR_RETURN(ColumnRef col, RewriteColumn(p.column, kEqSuffix, scope));
      std::vector<Literal> values;
      for (const auto& v : p.in_list) {
        DPE_ASSIGN_OR_RETURN(Literal ev, EncryptConstEq(key, type, v));
        values.push_back(std::move(ev));
      }
      return Predicate::In(std::move(col), std::move(values));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<PredicatePtr> children;
      for (const auto& c : p.children) {
        DPE_ASSIGN_OR_RETURN(PredicatePtr rc, RewritePredicate(*c, scope));
        children.push_back(std::move(rc));
      }
      return p.kind == Kind::kAnd ? Predicate::And(std::move(children))
                                  : Predicate::Or(std::move(children));
    }
    case Kind::kNot: {
      DPE_ASSIGN_OR_RETURN(PredicatePtr child,
                           RewritePredicate(*p.children[0], scope));
      return Predicate::Not(std::move(child));
    }
  }
  return Status::Internal("unreachable predicate kind");
}

Result<SelectQuery> QueryRewriter::Rewrite(const SelectQuery& q) const {
  DPE_CRYPTO_COUNT("cryptdb", "rewrite");
  crypto::CryptoSpan rewrite_span("cryptdb.rewrite");
  Scope scope(q);
  SelectQuery out;
  out.distinct = q.distinct;

  // FROM / JOIN.
  out.from.name = crypto_->EncryptRelName(q.from.name);
  if (!q.from.alias.empty()) {
    out.from.alias = crypto_->EncryptRelName(q.from.alias);
  }
  for (const auto& j : q.joins) {
    sql::JoinClause ej;
    ej.table.name = crypto_->EncryptRelName(j.table.name);
    if (!j.table.alias.empty()) {
      ej.table.alias = crypto_->EncryptRelName(j.table.alias);
    }
    DPE_ASSIGN_OR_RETURN(ej.left, RewriteColumn(j.left, kEqSuffix, scope));
    DPE_ASSIGN_OR_RETURN(ej.right, RewriteColumn(j.right, kEqSuffix, scope));
    out.joins.push_back(std::move(ej));
  }

  // Select list. SELECT * expands to one explicit onion column per
  // plaintext column (relations in syntactic order), so the owner-side
  // decrypt plan and the encrypted projection agree on arity and order.
  const bool multi_relation = !q.joins.empty();
  for (const auto& item : q.items) {
    if (item.star && item.agg == sql::AggFn::kNone) {
      std::vector<sql::TableRef> tables;
      tables.push_back(q.from);
      for (const auto& j : q.joins) tables.push_back(j.table);
      for (const auto& tref : tables) {
        auto sit = schemas_->find(tref.name);
        if (sit == schemas_->end()) {
          return Status::NotFound("unknown relation " + tref.name);
        }
        const std::string qualifier =
            tref.alias.empty() ? tref.name : tref.alias;
        for (const auto& col : sit->second.columns()) {
          const std::string key = tref.name + "." + col.name;
          ColumnOnionConfig cfg = crypto_->layout().ConfigFor(key);
          const char* suffix = cfg.eq ? kEqSuffix
                                      : (cfg.rnd_only() ? kRndSuffix : kEqSuffix);
          ColumnRef out_col;
          if (multi_relation) {
            out_col.relation = crypto_->EncryptRelName(qualifier);
          }
          out_col.name = crypto_->EncryptAttrName(col.name) + suffix;
          out.items.push_back(sql::SelectItem::Col(std::move(out_col)));
        }
      }
      continue;
    }
    if (item.star && item.agg == sql::AggFn::kCount) {
      out.items.push_back(sql::SelectItem::CountStar());
      continue;
    }
    DPE_ASSIGN_OR_RETURN(std::string rel, scope.RelationOf(item.column));
    const std::string key = rel + "." + item.column.name;
    const char* suffix = kEqSuffix;
    switch (item.agg) {
      case sql::AggFn::kSum:
      case sql::AggFn::kAvg:
        suffix = kAddSuffix;
        break;
      case sql::AggFn::kMin:
      case sql::AggFn::kMax:
        suffix = kOrdSuffix;
        break;
      case sql::AggFn::kCount:
        suffix = kEqSuffix;
        break;
      case sql::AggFn::kNone: {
        // Projection: EQ when available, RND otherwise.
        ColumnOnionConfig cfg = crypto_->layout().ConfigFor(key);
        suffix = cfg.eq ? kEqSuffix : (cfg.rnd_only() ? kRndSuffix : kEqSuffix);
        break;
      }
    }
    DPE_ASSIGN_OR_RETURN(ColumnRef col, RewriteColumn(item.column, suffix, scope));
    out.items.push_back(item.agg == sql::AggFn::kNone
                            ? sql::SelectItem::Col(std::move(col))
                            : sql::SelectItem::Agg(item.agg, std::move(col)));
  }

  // WHERE.
  if (q.where) {
    DPE_ASSIGN_OR_RETURN(out.where, RewritePredicate(*q.where, scope));
  }

  // GROUP BY on the EQ onion; ORDER BY on the ORD onion.
  for (const auto& c : q.group_by) {
    DPE_ASSIGN_OR_RETURN(ColumnRef col, RewriteColumn(c, kEqSuffix, scope));
    out.group_by.push_back(std::move(col));
  }
  for (const auto& o : q.order_by) {
    sql::OrderItem item;
    DPE_ASSIGN_OR_RETURN(item.column, RewriteColumn(o.column, kOrdSuffix, scope));
    item.ascending = o.ascending;
    out.order_by.push_back(std::move(item));
  }
  out.limit = q.limit;
  return out;
}

}  // namespace dpe::cryptdb
