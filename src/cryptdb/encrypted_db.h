// CryptDb: the owner-side facade over the whole CryptDB substrate.
//
//   owner   : Build(plain_db, layout)  ->  encrypted database + keys
//   owner   : Rewrite(plain query)     ->  encrypted query
//   provider: ExecuteEncrypted(enc q)  ->  encrypted result (Paillier hook)
//   owner   : DecryptResult(...)       ->  plaintext result
//
// The provider only ever sees the encrypted database, encrypted queries and
// the Paillier *public* key (inside the aggregate hook).

#ifndef DPE_CRYPTDB_ENCRYPTED_DB_H_
#define DPE_CRYPTDB_ENCRYPTED_DB_H_

#include <map>
#include <memory>
#include <string>

#include "cryptdb/onion.h"
#include "cryptdb/rewriter.h"
#include "db/access_area.h"
#include "db/database.h"
#include "db/executor.h"

namespace dpe::cryptdb {

class CryptDb {
 public:
  struct Options {
    OnionCrypto::Options crypto;
    /// Also materialize RND columns for columns with onions (CryptDB keeps
    /// an outer RND layer; we model it as an extra column when asked).
    bool materialize_rnd_for_all = false;
  };

  /// Encrypts `plain` under `layout`. `keys` must outlive the CryptDb.
  static Result<CryptDb> Build(const db::Database& plain,
                               const OnionLayout& layout,
                               const crypto::KeyManager& keys,
                               const Options& options, crypto::Csprng rng);

  /// The encrypted database (what the service provider stores).
  const db::Database& encrypted() const { return encrypted_; }

  const OnionCrypto& onion_crypto() const { return *crypto_; }

  /// Owner-side: plaintext query -> encrypted query.
  Result<sql::SelectQuery> Rewrite(const sql::SelectQuery& query) const;

  /// Provider-side execution options (Paillier SUM/AVG hook; public key only).
  db::ExecuteOptions ProviderOptions() const;

  /// Convenience: run an encrypted query on the encrypted database.
  Result<db::ResultTable> ExecuteEncrypted(const sql::SelectQuery& enc_query) const;

  /// Owner-side: decrypt an encrypted result. `plain_query` supplies the
  /// column/key mapping (the proxy keeps the original query, as in CryptDB).
  Result<db::ResultTable> DecryptResult(const sql::SelectQuery& plain_query,
                                        const db::ResultTable& enc_result) const;

  /// Owner-side: OPE-encrypted image of a plaintext domain registry, keyed
  /// by encrypted "rel.attr" names — what the provider gets for the
  /// access-area measure ("Domains" column of Table I).
  Result<db::DomainRegistry> EncryptDomains(const db::DomainRegistry& plain) const;

  /// Encrypted key ("encRel.encAttr") of a plaintext column key.
  std::string EncryptColumnKey(const std::string& column_key) const;

 private:
  CryptDb(std::unique_ptr<OnionCrypto> crypto, db::Database encrypted,
          SchemaMap schemas)
      : crypto_(std::move(crypto)),
        encrypted_(std::move(encrypted)),
        schemas_(std::move(schemas)) {}

  std::unique_ptr<OnionCrypto> crypto_;
  db::Database encrypted_;
  SchemaMap schemas_;  // plaintext schemas (owner side)
};

}  // namespace dpe::cryptdb

#endif  // DPE_CRYPTDB_ENCRYPTED_DB_H_
