#include "cryptdb/onion.h"

#include "common/hex.h"
#include "crypto/scheme.h"
#include "sql/ast.h"

namespace dpe::cryptdb {

using crypto::Bigint;
using crypto::BoldyrevaOpe;
using crypto::DetEncryptor;
using crypto::Paillier;
using db::Value;

Result<uint64_t> OrderPreservingU64(const Value& v) {
  if (v.is_int()) return crypto::OrderPreservingU64FromI64(v.int_value());
  if (v.is_double()) {
    return crypto::OrderPreservingU64FromDouble(v.double_value());
  }
  return Status::TypeError("ORD onion requires a numeric value, got " +
                           v.ToDisplayString());
}

Result<Value> ValueFromOrderPreservingU64(uint64_t u, db::ColumnType type) {
  switch (type) {
    case db::ColumnType::kInt:
      return Value::Int(crypto::I64FromOrderPreservingU64(u));
    case db::ColumnType::kDouble:
      return Value::Double(crypto::DoubleFromOrderPreservingU64(u));
    case db::ColumnType::kString:
      return Status::TypeError("ORD onion does not cover string columns");
  }
  return Status::Internal("bad column type");
}

OnionCrypto::OnionCrypto(const crypto::KeyManager& keys, OnionLayout layout,
                         const Options& options, crypto::Csprng rng,
                         Paillier::KeyPair paillier)
    : keys_(&keys),
      layout_(std::move(layout)),
      options_(options),
      rng_(std::move(rng)),
      paillier_(std::move(paillier)) {}

Result<OnionCrypto> OnionCrypto::Create(const crypto::KeyManager& keys,
                                        OnionLayout layout,
                                        const Options& options,
                                        crypto::Csprng rng) {
  DPE_ASSIGN_OR_RETURN(Paillier::KeyPair kp,
                       Paillier::GenerateKeyPair(options.paillier_bits, rng));
  return OnionCrypto(keys, std::move(layout), options, std::move(rng),
                     std::move(kp));
}

namespace {

std::string IdentifierEncode(const Bytes& ciphertext) {
  return "e" + HexEncode(ciphertext);
}

Result<Bytes> IdentifierDecode(const std::string& enc_name) {
  if (enc_name.empty() || enc_name[0] != 'e') {
    return Status::CryptoError("not an encrypted identifier: " + enc_name);
  }
  return HexDecode(std::string_view(enc_name).substr(1));
}

}  // namespace

std::string OnionCrypto::EncryptRelName(const std::string& name) const {
  auto enc = DetEncryptor::Create(keys_->Derive("name/rel"));
  return IdentifierEncode(enc->EncryptConst(name));
}

std::string OnionCrypto::EncryptAttrName(const std::string& name) const {
  auto enc = DetEncryptor::Create(keys_->Derive("name/attr"));
  return IdentifierEncode(enc->EncryptConst(name));
}

Result<std::string> OnionCrypto::DecryptRelName(
    const std::string& enc_name) const {
  DPE_ASSIGN_OR_RETURN(Bytes ct, IdentifierDecode(enc_name));
  auto enc = DetEncryptor::Create(keys_->Derive("name/rel"));
  DPE_ASSIGN_OR_RETURN(Bytes pt, enc->Decrypt(ct));
  return std::string(pt);
}

Result<std::string> OnionCrypto::DecryptAttrName(
    const std::string& enc_name) const {
  DPE_ASSIGN_OR_RETURN(Bytes ct, IdentifierDecode(enc_name));
  auto enc = DetEncryptor::Create(keys_->Derive("name/attr"));
  DPE_ASSIGN_OR_RETURN(Bytes pt, enc->Decrypt(ct));
  return std::string(pt);
}

Result<DetEncryptor> OnionCrypto::EqEncryptorFor(
    const std::string& column_key) const {
  if (layout_.shared_value_keys) {
    return DetEncryptor::Create(keys_->Derive("onion/@shared/eq"));
  }
  auto group = layout_.join_group_of.find(column_key);
  Bytes key = group != layout_.join_group_of.end()
                  ? keys_->Derive("onion/join-group/" + group->second + "/eq")
                  : keys_->Derive("onion/" + column_key + "/eq");
  return DetEncryptor::Create(key);
}

Result<BoldyrevaOpe> OnionCrypto::OrdEncryptorFor(
    const std::string& column_key) const {
  BoldyrevaOpe::Options opts;
  opts.domain_bits = 64;
  opts.range_bits = options_.ope_range_bits;
  const std::string purpose = layout_.shared_value_keys
                                  ? "onion/@shared/ord"
                                  : "onion/" + column_key + "/ord";
  return BoldyrevaOpe::Create(keys_->Derive(purpose), opts);
}

Result<Value> OnionCrypto::EncryptEq(const std::string& column_key,
                                     const Value& v) const {
  if (v.is_null()) return Value::Null();
  DPE_ASSIGN_OR_RETURN(DetEncryptor enc, EqEncryptorFor(column_key));
  return Value::String("e" + HexEncode(enc.EncryptConst(v.KeyBytes())));
}

Result<Value> OnionCrypto::EncryptOrd(const std::string& column_key,
                                      const Value& v) const {
  if (v.is_null()) return Value::Null();
  DPE_ASSIGN_OR_RETURN(uint64_t u, OrderPreservingU64(v));
  DPE_ASSIGN_OR_RETURN(BoldyrevaOpe ope, OrdEncryptorFor(column_key));
  // Type tag ('i'/'d') keeps int and double images disjoint even under a
  // shared ORD key; within a (homogeneously typed) column it is constant,
  // so string order still equals numeric order.
  const char type_tag = v.is_int() ? 'i' : 'd';
  return Value::String(std::string("o") + type_tag + ope.EncryptToHex(u));
}

Result<Value> OnionCrypto::EncryptAdd(const std::string& column_key,
                                      const Value& v) {
  (void)column_key;  // one Paillier key pair serves the whole database
  if (v.is_null()) return Value::Null();
  if (!v.is_int()) {
    return Status::TypeError("ADD onion requires an int value, got " +
                             v.ToDisplayString());
  }
  Bigint m = Paillier::EncodeSigned(paillier_.pub, v.int_value());
  DPE_ASSIGN_OR_RETURN(Bigint ct, Paillier::Encrypt(paillier_.pub, m, rng_));
  return Value::String("h" + HexEncode(ct.ToBytes()));
}

Result<Value> OnionCrypto::EncryptRnd(const std::string& column_key,
                                      const Value& v) {
  if (v.is_null()) return Value::Null();
  DPE_ASSIGN_OR_RETURN(
      crypto::ProbEncryptor enc,
      crypto::ProbEncryptor::Create(keys_->Derive("onion/" + column_key + "/rnd"),
                                    crypto::Csprng::FromSeed(rng_.NextBytes(32))));
  return Value::String("p" + HexEncode(enc.Encrypt(v.KeyBytes())));
}

Result<Value> OnionCrypto::DecryptCell(const std::string& column_key,
                                       db::ColumnType type,
                                       const Value& cell) const {
  if (cell.is_null()) return Value::Null();
  if (!cell.is_string() || cell.string_value().empty()) {
    return Status::CryptoError("onion cell must be a tagged string");
  }
  const std::string& s = cell.string_value();
  std::string_view hex = std::string_view(s).substr(1);
  switch (s[0]) {
    case 'e': {
      DPE_ASSIGN_OR_RETURN(Bytes ct, HexDecode(hex));
      DPE_ASSIGN_OR_RETURN(DetEncryptor enc, EqEncryptorFor(column_key));
      DPE_ASSIGN_OR_RETURN(Bytes pt, enc.Decrypt(ct));
      DPE_ASSIGN_OR_RETURN(sql::Literal lit, sql::Literal::FromCanonicalBytes(pt));
      return Value::FromLiteral(lit);
    }
    case 'o': {
      if (hex.size() < 2 || (hex[0] != 'i' && hex[0] != 'd')) {
        return Status::CryptoError("ORD cell missing type tag");
      }
      const db::ColumnType cell_type =
          hex[0] == 'i' ? db::ColumnType::kInt : db::ColumnType::kDouble;
      (void)type;  // the self-describing tag wins over the schema hint
      DPE_ASSIGN_OR_RETURN(Bytes ct, HexDecode(hex.substr(1)));
      DPE_ASSIGN_OR_RETURN(BoldyrevaOpe ope, OrdEncryptorFor(column_key));
      DPE_ASSIGN_OR_RETURN(uint64_t u, ope.Decrypt(Bigint::FromBytes(ct)));
      return ValueFromOrderPreservingU64(u, cell_type);
    }
    case 'h': {
      DPE_ASSIGN_OR_RETURN(int64_t v, DecryptPaillierSum(cell));
      return Value::Int(v);
    }
    case 'p': {
      DPE_ASSIGN_OR_RETURN(Bytes ct, HexDecode(hex));
      DPE_ASSIGN_OR_RETURN(
          crypto::ProbEncryptor enc,
          crypto::ProbEncryptor::Create(
              keys_->Derive("onion/" + column_key + "/rnd"),
              crypto::Csprng::FromSeed("decrypt-unused")));
      DPE_ASSIGN_OR_RETURN(Bytes pt, enc.Decrypt(ct));
      DPE_ASSIGN_OR_RETURN(sql::Literal lit, sql::Literal::FromCanonicalBytes(pt));
      return Value::FromLiteral(lit);
    }
    default:
      return Status::CryptoError("unknown onion cell tag '" +
                                 std::string(1, s[0]) + "'");
  }
}

Result<int64_t> OnionCrypto::DecryptPaillierSum(const Value& cell) const {
  if (!cell.is_string() || cell.string_value().empty() ||
      cell.string_value()[0] != 'h') {
    return Status::CryptoError("not a Paillier cell");
  }
  DPE_ASSIGN_OR_RETURN(Bytes ct_bytes,
                       HexDecode(std::string_view(cell.string_value()).substr(1)));
  DPE_ASSIGN_OR_RETURN(
      Bigint m, Paillier::Decrypt(paillier_.pub, paillier_.priv,
                                  Bigint::FromBytes(ct_bytes)));
  return Paillier::DecodeSigned(paillier_.pub, m);
}

}  // namespace dpe::cryptdb
