// CryptDB-style onion encryption layout (Popa et al., SOSP'11 — [8] in the
// paper): every plaintext column materializes the onions its query workload
// needs.
//
//   EQ  onion: DET  — equality predicates, GROUP BY, projections      "e<hex>"
//   ORD onion: OPE  — range predicates, ORDER BY, MIN/MAX             "o<hex>"
//   ADD onion: HOM  — SUM/AVG via Paillier                            "h<hex>"
//   RND      : PROB — columns carried but never computed on           "p<hex>"
//
// Onion columns are ordinary string columns of an ordinary db::Database; the
// cell prefix identifies the onion and the fixed-width OPE hex keeps string
// order equal to numeric order, so the untrusted provider runs the plain
// executor unmodified (plus an aggregate hook for Paillier sums).

#ifndef DPE_CRYPTDB_ONION_H_
#define DPE_CRYPTDB_ONION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/csprng.h"
#include "crypto/det.h"
#include "crypto/keys.h"
#include "crypto/ope.h"
#include "crypto/paillier.h"
#include "crypto/prob.h"
#include "db/value.h"

namespace dpe::cryptdb {

/// Which onions a column materializes. When none is set the column is
/// carried under RND (PROB) only.
struct ColumnOnionConfig {
  bool eq = false;
  bool ord = false;
  bool add = false;

  bool rnd_only() const { return !eq && !ord && !add; }
};

/// The owner-chosen layout: per-column onion configs (keyed "rel.attr") plus
/// join groups (columns sharing one EQ key so equi-joins work — the JOIN
/// usage mode of Fig. 1).
struct OnionLayout {
  std::map<std::string, ColumnOnionConfig> columns;
  /// column key -> join group name; absent means column-scoped key.
  std::map<std::string, std::string> join_group_of;

  /// When true, ALL columns share one EQ key and one ORD key (a global JOIN
  /// usage mode). Required for exact *distance* preservation of the result
  /// measure: per-column keys satisfy Def. 4 (item-wise result equivalence)
  /// but not Def. 1 — plaintext result tuples can coincide across different
  /// attributes (cid = 17 vs age = 17), which per-column ciphertexts never
  /// do. See DESIGN.md and bench_ablation.
  bool shared_value_keys = false;

  ColumnOnionConfig ConfigFor(const std::string& column_key) const {
    auto it = columns.find(column_key);
    return it == columns.end() ? ColumnOnionConfig{} : it->second;
  }
};

/// Onion column-name suffixes.
inline constexpr char kEqSuffix[] = "__eq";
inline constexpr char kOrdSuffix[] = "__ord";
inline constexpr char kAddSuffix[] = "__add";
inline constexpr char kRndSuffix[] = "__rnd";

/// Owner-side cryptographic material: name encryptors, per-column onion
/// encryptors, and the database-wide Paillier key pair.
class OnionCrypto {
 public:
  struct Options {
    /// Paillier modulus size; >= 512 outside unit tests.
    int paillier_bits = 768;
    /// OPE ciphertext width (bits); must exceed 64.
    int ope_range_bits = 96;
  };

  static Result<OnionCrypto> Create(const crypto::KeyManager& keys,
                                    OnionLayout layout, const Options& options,
                                    crypto::Csprng rng);

  const OnionLayout& layout() const { return layout_; }

  // -- Identifier encryption (EncRel / EncAttr of the high-level scheme) --

  /// DET-encrypted, identifier-safe relation name ("e" + hex).
  std::string EncryptRelName(const std::string& name) const;
  /// DET-encrypted, identifier-safe attribute name.
  std::string EncryptAttrName(const std::string& name) const;
  Result<std::string> DecryptRelName(const std::string& enc_name) const;
  Result<std::string> DecryptAttrName(const std::string& enc_name) const;

  // -- Cell / constant encryption --

  /// EQ onion: DET of the value's canonical bytes -> "e<hex>".
  Result<db::Value> EncryptEq(const std::string& column_key,
                              const db::Value& v) const;
  /// ORD onion: order-preserving -> "o<fixed-width hex>". Numeric only.
  Result<db::Value> EncryptOrd(const std::string& column_key,
                               const db::Value& v) const;
  /// ADD onion: Paillier of the signed int value -> "h<hex>". Int only.
  Result<db::Value> EncryptAdd(const std::string& column_key,
                               const db::Value& v);
  /// RND: PROB -> "p<hex>". Any value.
  Result<db::Value> EncryptRnd(const std::string& column_key,
                               const db::Value& v);

  /// Inverts any onion cell (dispatch on prefix). `type` is the plaintext
  /// column type (needed to decode ORD cells).
  Result<db::Value> DecryptCell(const std::string& column_key,
                                db::ColumnType type, const db::Value& cell) const;

  const crypto::Paillier::PublicKey& paillier_pub() const { return paillier_.pub; }
  const crypto::Paillier::PrivateKey& paillier_priv() const {
    return paillier_.priv;
  }

  /// Paillier sum decode: "h<hex>" cell -> signed int.
  Result<int64_t> DecryptPaillierSum(const db::Value& cell) const;

 private:
  OnionCrypto(const crypto::KeyManager& keys, OnionLayout layout,
              const Options& options, crypto::Csprng rng,
              crypto::Paillier::KeyPair paillier);

  Result<crypto::DetEncryptor> EqEncryptorFor(const std::string& column_key) const;
  Result<crypto::BoldyrevaOpe> OrdEncryptorFor(const std::string& column_key) const;

  const crypto::KeyManager* keys_;
  OnionLayout layout_;
  Options options_;
  mutable crypto::Csprng rng_;
  crypto::Paillier::KeyPair paillier_;
};

/// Order-preserving uint64 image of a numeric value (ints via offset binary,
/// doubles via the IEEE-754 monotone map, mapped below/above so that the
/// per-column type homogeneity keeps order consistent).
Result<uint64_t> OrderPreservingU64(const db::Value& v);

/// Inverse for a known column type.
Result<db::Value> ValueFromOrderPreservingU64(uint64_t u, db::ColumnType type);

}  // namespace dpe::cryptdb

#endif  // DPE_CRYPTDB_ONION_H_
