// The crash-injection harness itself (common/fault.h): spec parsing, hit
// counting, nth-hit selection, fire-at-most-once, and the capped wedge.
// The lethal actions (die, uncapped wedge) are exercised for real by
// bench_multihost, which scripts them into forked worker processes.

#include "common/fault.h"

#include <gtest/gtest.h>

#include <chrono>

namespace dpe::common {
namespace {

TEST(FaultInjectorTest, UnarmedFireIsANoOp) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  injector.Fire("worker.export");  // must simply return
  EXPECT_EQ(injector.hits("worker.export"), 0u)
      << "a fully disarmed injector does not even track hits";
}

TEST(FaultInjectorTest, SpecParsingRejectsMalformedEntries) {
  FaultInjector injector;
  std::string error;
  EXPECT_FALSE(injector.Arm("no-equals-sign", &error));
  EXPECT_NE(error.find("point=action"), std::string::npos);
  EXPECT_FALSE(injector.Arm("=die", &error));
  EXPECT_FALSE(injector.Arm("p=explode", &error));
  EXPECT_NE(error.find("die|wedge|sleep"), std::string::npos);
  EXPECT_FALSE(injector.Arm("p=sleep", &error))
      << "sleep requires a duration";
  EXPECT_FALSE(injector.Arm("p=sleep:abc", &error));
  EXPECT_FALSE(injector.Arm("p=die@0", &error))
      << "@ wants a positive hit count";
  EXPECT_FALSE(injector.Arm("p=die@x", &error));
  EXPECT_FALSE(injector.armed()) << "a failed Arm never partially arms";
}

TEST(FaultInjectorTest, EmptySpecDisarms) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("p=sleep:1"));
  EXPECT_TRUE(injector.armed());
  ASSERT_TRUE(injector.Arm(""));
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, SleepFiresOnTheScriptedHitAndOnlyOnce) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("worker.preacquire=sleep:60@2"));

  const auto before_first = std::chrono::steady_clock::now();
  injector.Fire("worker.preacquire");  // hit 1: armed for hit 2, no action
  const auto after_first = std::chrono::steady_clock::now();
  EXPECT_LT(after_first - before_first, std::chrono::milliseconds(50));

  const auto before_second = std::chrono::steady_clock::now();
  injector.Fire("worker.preacquire");  // hit 2: sleeps 60ms
  const auto after_second = std::chrono::steady_clock::now();
  EXPECT_GE(after_second - before_second, std::chrono::milliseconds(55));

  EXPECT_FALSE(injector.armed()) << "the entry fired and is gone";
  const auto before_third = std::chrono::steady_clock::now();
  injector.Fire("worker.preacquire");  // hit 3: nothing left to fire
  EXPECT_LT(std::chrono::steady_clock::now() - before_third,
            std::chrono::milliseconds(50));
  EXPECT_EQ(injector.hits("worker.preacquire"), 3u);
}

TEST(FaultInjectorTest, CappedWedgeReturnsAfterItsCap) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("worker.acquired=wedge:150"));
  const auto before = std::chrono::steady_clock::now();
  injector.Fire("worker.acquired");
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(elapsed, std::chrono::milliseconds(140));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(FaultInjectorTest, MultipleEntriesOnIndependentPoints) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("a=sleep:1;b=sleep:1@3"));
  injector.Fire("a");
  EXPECT_TRUE(injector.armed()) << "b's entry is still pending";
  injector.Fire("b");
  injector.Fire("b");
  injector.Fire("b");
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.hits("a"), 1u);
  EXPECT_EQ(injector.hits("b"), 3u);
}

TEST(FaultInjectorTest, ProgrammaticArmMirrorsTheSpecPath) {
  FaultInjector injector;
  FaultInjector::Fault fault;
  fault.point = "store.frame.mid_write";
  fault.action = FaultInjector::Action::kSleep;
  fault.delay_ms = 1;
  injector.Arm(fault);
  EXPECT_TRUE(injector.armed());
  injector.Fire("store.frame.mid_write");
  EXPECT_FALSE(injector.armed());
  injector.Clear();
  EXPECT_EQ(injector.hits("store.frame.mid_write"), 0u)
      << "Clear drops hit counts with the entries";
}

}  // namespace
}  // namespace dpe::common
