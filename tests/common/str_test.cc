#include "common/str.h"

#include <gtest/gtest.h>

namespace dpe {
namespace {

TEST(StrTest, CaseConversion) {
  EXPECT_EQ(ToUpperAscii("Select a1"), "SELECT A1");
  EXPECT_EQ(ToLowerAscii("FROM R2"), "from r2");
}

TEST(StrTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
}

TEST(StrTest, Split) {
  EXPECT_EQ(Split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StrTest, CaseInsensitiveHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT a", "select"));
  EXPECT_FALSE(StartsWithIgnoreCase("SEL", "select"));
}

}  // namespace
}  // namespace dpe
