// The shared retry-delay policy (common/backoff.h). The pusher's telemetry
// tests assert the same ladder through HTTP failures; these pin the policy
// itself — ladder shape, reset, jitter bounds, normalization — so the shard
// driver can lean on it without re-proving the arithmetic.

#include "common/backoff.h"

#include <gtest/gtest.h>

#include <set>

namespace dpe::common {
namespace {

TEST(BackoffTest, LadderDoublesFromMinToCapAndHoldsThere) {
  Backoff backoff(BackoffPolicy{500, 30000, 25});
  EXPECT_EQ(backoff.base_ms(), 0) << "healthy ladder starts at zero";
  EXPECT_EQ(backoff.OnFailure(), 500);
  EXPECT_EQ(backoff.OnFailure(), 1000);
  EXPECT_EQ(backoff.OnFailure(), 2000);
  EXPECT_EQ(backoff.OnFailure(), 4000);
  EXPECT_EQ(backoff.OnFailure(), 8000);
  EXPECT_EQ(backoff.OnFailure(), 16000);
  EXPECT_EQ(backoff.OnFailure(), 30000) << "doubling clamps at the cap";
  EXPECT_EQ(backoff.OnFailure(), 30000) << "and holds there";
  EXPECT_EQ(backoff.base_ms(), 30000);
}

TEST(BackoffTest, OneSuccessResetsTheLadderToMin) {
  Backoff backoff(BackoffPolicy{100, 1000, 0});
  backoff.OnFailure();
  backoff.OnFailure();
  ASSERT_EQ(backoff.base_ms(), 200);
  backoff.OnSuccess();
  EXPECT_EQ(backoff.base_ms(), 0);
  EXPECT_EQ(backoff.OnFailure(), 100) << "next failure starts from min again";
}

TEST(BackoffTest, JitteredWaitIsZeroWhileHealthy) {
  Backoff backoff(BackoffPolicy{500, 30000, 25}, /*jitter_seed=*/7);
  EXPECT_EQ(backoff.JitteredMs(), 0);
}

TEST(BackoffTest, JitterStaysWithinTheConfiguredPercent) {
  Backoff backoff(BackoffPolicy{1000, 30000, 25}, /*jitter_seed=*/42);
  backoff.OnFailure();  // base = 1000, jitter span = [0, 250]
  for (int i = 0; i < 1000; ++i) {
    const int wait = backoff.JitteredMs();
    EXPECT_GE(wait, 1000);
    EXPECT_LE(wait, 1250);
  }
}

TEST(BackoffTest, JitterDrawsVaryAcrossTheStream) {
  Backoff backoff(BackoffPolicy{10000, 30000, 25}, /*jitter_seed=*/42);
  backoff.OnFailure();  // base = 10000, span = 2501 buckets
  std::set<int> waits;
  for (int i = 0; i < 64; ++i) waits.insert(backoff.JitteredMs());
  EXPECT_GT(waits.size(), 1u) << "xorshift stream must actually advance";
}

TEST(BackoffTest, FixedSeedGivesReproducibleJitterSequences) {
  Backoff a(BackoffPolicy{1000, 30000, 25}, /*jitter_seed=*/99);
  Backoff b(BackoffPolicy{1000, 30000, 25}, /*jitter_seed=*/99);
  a.OnFailure();
  b.OnFailure();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.JitteredMs(), b.JitteredMs());
}

TEST(BackoffTest, ZeroJitterPercentWaitsExactlyTheBase) {
  Backoff backoff(BackoffPolicy{500, 30000, 0}, /*jitter_seed=*/5);
  backoff.OnFailure();
  backoff.OnFailure();
  EXPECT_EQ(backoff.JitteredMs(), 1000);
}

TEST(BackoffTest, TinyBaseStillJittersByAtLeastOneBucket) {
  // 25% of 4ms is 1ms: the span arithmetic must not collapse to zero
  // buckets for small bases (the +1 in the span).
  Backoff backoff(BackoffPolicy{4, 30000, 25}, /*jitter_seed=*/13);
  backoff.OnFailure();
  std::set<int> waits;
  for (int i = 0; i < 64; ++i) {
    const int wait = backoff.JitteredMs();
    EXPECT_GE(wait, 4);
    EXPECT_LE(wait, 5);
    waits.insert(wait);
  }
  EXPECT_EQ(waits.size(), 2u) << "both 4 and 5 should appear over 64 draws";
}

TEST(BackoffTest, DegeneratePoliciesAreNormalized) {
  // min below 1 clamps to 1; a cap below the min rises to the min; negative
  // jitter clamps to none.
  Backoff backoff(BackoffPolicy{-5, -100, -3});
  EXPECT_EQ(backoff.policy().min_delay_ms, 1);
  EXPECT_EQ(backoff.policy().max_delay_ms, 1);
  EXPECT_EQ(backoff.policy().jitter_pct, 0);
  EXPECT_EQ(backoff.OnFailure(), 1);
  EXPECT_EQ(backoff.OnFailure(), 1);
  EXPECT_EQ(backoff.JitteredMs(), 1);
}

TEST(BackoffTest, ResetReArmsPolicyAndZeroesTheBase) {
  Backoff backoff(BackoffPolicy{500, 30000, 25});
  backoff.OnFailure();
  backoff.OnFailure();
  ASSERT_EQ(backoff.base_ms(), 1000);
  backoff.Reset(BackoffPolicy{50, 200, 0});
  EXPECT_EQ(backoff.base_ms(), 0) << "Reset re-arms a healthy ladder";
  EXPECT_EQ(backoff.OnFailure(), 50);
  EXPECT_EQ(backoff.OnFailure(), 100);
  EXPECT_EQ(backoff.OnFailure(), 200);
  EXPECT_EQ(backoff.OnFailure(), 200);
}

}  // namespace
}  // namespace dpe::common
