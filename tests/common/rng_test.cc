#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dpe {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    (void)c.NextU64();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.NextU64(), c2.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(4);
  Rng::ZipfDist zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(RngTest, ZipfCoversSupport) {
  Rng rng(5);
  Rng::ZipfDist zipf(5, 0.5);
  std::set<size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.Sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

}  // namespace
}  // namespace dpe
