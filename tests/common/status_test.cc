#include "common/status.h"

#include <gtest/gtest.h>

namespace dpe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kExecutionError); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  DPE_ASSIGN_OR_RETURN(int h, Half(v));
  DPE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

Status FailFast(bool fail) {
  DPE_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailFast(false).ok());
  EXPECT_EQ(FailFast(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dpe
