#include "common/hex.h"

#include <gtest/gtest.h>

namespace dpe {
namespace {

TEST(HexTest, EncodeBasic) {
  EXPECT_EQ(HexEncode(""), "");
  EXPECT_EQ(HexEncode(std::string("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(HexEncode("AB"), "4142");
}

TEST(HexTest, DecodeRoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  auto decoded = HexDecode(HexEncode(data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, DecodeAcceptsUppercase) {
  auto d = HexDecode("DEADBEEF");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(HexEncode(*d), "deadbeef");
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
  EXPECT_FALSE(HexDecode("0g").ok());
}

TEST(BigEndianTest, RoundTrip64) {
  for (uint64_t v : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL, 1ULL << 63}) {
    Bytes b = EncodeBigEndian64(v);
    ASSERT_EQ(b.size(), 8u);
    EXPECT_EQ(DecodeBigEndian64(b), v);
  }
}

TEST(BigEndianTest, OrderMatchesIntegerOrder) {
  // Big-endian fixed width: lexicographic byte order == numeric order.
  EXPECT_LT(EncodeBigEndian64(5), EncodeBigEndian64(6));
  EXPECT_LT(EncodeBigEndian64(255), EncodeBigEndian64(256));
  EXPECT_LT(EncodeBigEndian64(0), EncodeBigEndian64(~0ULL));
}

TEST(ConstantTimeEqualsTest, Works) {
  EXPECT_TRUE(ConstantTimeEquals("abc", "abc"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "abd"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "abcd"));
  EXPECT_TRUE(ConstantTimeEquals("", ""));
}

}  // namespace
}  // namespace dpe
