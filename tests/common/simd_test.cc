// Property tests for the runtime-dispatched SIMD kernel backend: every
// backend compiled in AND runnable on this CPU must return bit-identical
// results to the scalar reference kernels, on adversarial inputs — empty
// inputs, disjoint and identical sets, 1-element-vs-huge skew (the
// galloping path), and sizes straddling every SIMD width (4/8 lanes for
// the intersection, the 64-bit word boundary for the Myers edit kernel).
// On a scalar-only build (non-x86 or -DDPE_DISABLE_SIMD) the loops
// degenerate to scalar-vs-scalar and still pass — that is the point.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"

namespace dpe::common::simd {
namespace {

uint64_t FallbackCount() {
  return obs::MetricsRegistry::Default()
      .counter("kernel.backend_fallback")
      .value();
}

TEST(BackendOverrideTest, RequestAboveDetectedFallsBackWithWarning) {
  std::vector<obs::LogRecord> captured;
  obs::ScopedLogSink sink(
      [&captured](const obs::LogRecord& r) { captured.push_back(r); });
  const uint64_t before = FallbackCount();

  const KernelBackend resolved =
      ApplyEnvBackendOverride("avx2", KernelBackend::kScalar);

  EXPECT_EQ(resolved, KernelBackend::kScalar);
  EXPECT_EQ(FallbackCount(), before + 1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(captured[0].component, "kernel");
  ASSERT_GE(captured[0].fields.size(), 2u);
  EXPECT_EQ(captured[0].fields[0], (std::pair<std::string, std::string>{
                                       "requested", "avx2"}));
  EXPECT_EQ(captured[0].fields[1], (std::pair<std::string, std::string>{
                                       "resolved", "scalar"}));
}

TEST(BackendOverrideTest, UnparseableValueFallsBackWithWarning) {
  std::vector<obs::LogRecord> captured;
  obs::ScopedLogSink sink(
      [&captured](const obs::LogRecord& r) { captured.push_back(r); });
  const uint64_t before = FallbackCount();

  const KernelBackend resolved =
      ApplyEnvBackendOverride("bogus", KernelBackend::kSse42);

  EXPECT_EQ(resolved, KernelBackend::kSse42);
  EXPECT_EQ(FallbackCount(), before + 1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, obs::LogLevel::kWarn);
  // The warning carries the parse error, not just the names.
  ASSERT_EQ(captured[0].fields.size(), 3u);
  EXPECT_EQ(captured[0].fields[2].first, "error");
}

TEST(BackendOverrideTest, RunnableRequestIsHonoredSilently) {
  std::vector<obs::LogRecord> captured;
  obs::ScopedLogSink sink(
      [&captured](const obs::LogRecord& r) { captured.push_back(r); });
  const uint64_t before = FallbackCount();

  EXPECT_EQ(ApplyEnvBackendOverride("scalar", DetectBackend()),
            KernelBackend::kScalar);
  EXPECT_EQ(ApplyEnvBackendOverride("auto", DetectBackend()),
            DetectBackend());

  EXPECT_EQ(FallbackCount(), before);
  EXPECT_TRUE(captured.empty());
}

std::vector<uint32_t> SortedUnique(std::mt19937& rng, size_t target,
                                   uint32_t max_value) {
  std::set<uint32_t> s;
  std::uniform_int_distribution<uint32_t> value(0, max_value);
  // max_value + 1 distinct values exist; don't loop forever asking for more.
  const size_t reachable = std::min<size_t>(target, max_value + 1);
  while (s.size() < reachable) s.insert(value(rng));
  return {s.begin(), s.end()};
}

size_t ReferenceIntersect(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(BackendResolutionTest, NamesRoundTrip) {
  for (KernelBackend b : {KernelBackend::kAuto, KernelBackend::kScalar,
                          KernelBackend::kSse42, KernelBackend::kAvx2}) {
    auto parsed = ParseBackend(BackendName(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_TRUE(ParseBackend("sse42").ok());  // alias
  EXPECT_EQ(ParseBackend("neon").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseBackend("").status().code(), StatusCode::kInvalidArgument);
}

TEST(BackendResolutionTest, ScalarIsAlwaysRunnableAndFirst) {
  const auto& runnable = RunnableBackends();
  ASSERT_FALSE(runnable.empty());
  EXPECT_EQ(runnable.front(), KernelBackend::kScalar);
  EXPECT_TRUE(BackendIsRunnable(KernelBackend::kScalar));
  EXPECT_TRUE(BackendIsRunnable(KernelBackend::kAuto));
  EXPECT_TRUE(BackendIsRunnable(DetectBackend()));
  EXPECT_TRUE(ValidateBackend(KernelBackend::kAuto).ok());
  EXPECT_TRUE(ValidateBackend(KernelBackend::kScalar).ok());
}

TEST(BackendResolutionTest, TablesReportTheirBackendAndAutoResolves) {
  for (KernelBackend b : RunnableBackends()) {
    EXPECT_EQ(KernelsFor(b).backend, b);
  }
  // The auto table is one of the runnable ones.
  EXPECT_TRUE(BackendIsRunnable(Kernels().backend));
  EXPECT_NE(Kernels().backend, KernelBackend::kAuto);
}

TEST(IntersectKernelTest, AdversarialCasesMatchScalarOnEveryBackend) {
  const std::vector<uint32_t> empty;
  std::vector<uint32_t> ramp(100);
  for (uint32_t i = 0; i < 100; ++i) ramp[i] = 3 * i;
  std::vector<uint32_t> odd(100);
  for (uint32_t i = 0; i < 100; ++i) odd[i] = 3 * i + 1;  // fully disjoint
  const std::vector<uint32_t> one{150};  // gallops into ramp (hit: 150=3*50)

  for (KernelBackend b : RunnableBackends()) {
    const KernelTable& k = KernelsFor(b);
    auto isect = [&](const std::vector<uint32_t>& x,
                     const std::vector<uint32_t>& y) {
      return k.intersect(x.data(), x.size(), y.data(), y.size());
    };
    EXPECT_EQ(isect(empty, empty), 0u) << BackendName(b);
    EXPECT_EQ(isect(empty, ramp), 0u) << BackendName(b);
    EXPECT_EQ(isect(ramp, empty), 0u) << BackendName(b);
    EXPECT_EQ(isect(ramp, ramp), 100u) << BackendName(b);  // identical
    EXPECT_EQ(isect(ramp, odd), 0u) << BackendName(b);     // disjoint
    EXPECT_EQ(isect(one, ramp), 1u) << BackendName(b);     // 1 vs huge
    EXPECT_EQ(isect(ramp, one), 1u) << BackendName(b);
  }
}

TEST(IntersectKernelTest, SizesStraddlingSimdWidthMatchScalar) {
  std::mt19937 rng(20260729);
  const KernelTable& scalar = KernelsFor(KernelBackend::kScalar);
  for (size_t na : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u,
                    32u, 33u, 64u}) {
    for (size_t nb : {0u, 1u, 3u, 4u, 5u, 8u, 9u, 16u, 17u, 33u, 100u}) {
      for (uint32_t density : {8u, 40u, 1000u}) {
        const auto a = SortedUnique(rng, na, density);
        const auto b = SortedUnique(rng, nb, density);
        const size_t expect = ReferenceIntersect(a, b);
        ASSERT_EQ(scalar.intersect(a.data(), a.size(), b.data(), b.size()),
                  expect);
        for (KernelBackend backend : RunnableBackends()) {
          const KernelTable& k = KernelsFor(backend);
          EXPECT_EQ(k.intersect(a.data(), a.size(), b.data(), b.size()),
                    expect)
              << BackendName(backend) << " na=" << a.size()
              << " nb=" << b.size() << " density=" << density;
        }
      }
    }
  }
}

TEST(IntersectKernelTest, SkewedSizesTakeTheGallopPathAndStayExact) {
  std::mt19937 rng(42);
  const auto big = SortedUnique(rng, 4096, 100000);
  for (size_t ns : {1u, 2u, 5u, 16u, 33u, 127u}) {
    // Half the small set drawn from big (guaranteed hits), half random.
    std::set<uint32_t> small_set;
    std::uniform_int_distribution<size_t> pick(0, big.size() - 1);
    std::uniform_int_distribution<uint32_t> any(0, 100000);
    while (small_set.size() < ns / 2 + 1) small_set.insert(big[pick(rng)]);
    while (small_set.size() < ns) small_set.insert(any(rng));
    const std::vector<uint32_t> small(small_set.begin(), small_set.end());
    const size_t expect = ReferenceIntersect(small, big);
    for (KernelBackend b : RunnableBackends()) {
      const KernelTable& k = KernelsFor(b);
      EXPECT_EQ(k.intersect(small.data(), small.size(), big.data(),
                            big.size()),
                expect)
          << BackendName(b) << " ns=" << small.size();
      EXPECT_EQ(k.intersect(big.data(), big.size(), small.data(),
                            small.size()),
                expect)
          << BackendName(b) << " (swapped) ns=" << small.size();
    }
  }
}

TEST(EditKernelTest, KnownDistancesOnEveryBackend) {
  struct Case {
    std::string a, b;
    size_t d;
  };
  const std::vector<Case> cases = {
      {"", "", 0},         {"", "abc", 3},       {"abc", "", 3},
      {"abc", "abc", 0},   {"kitten", "sitting", 3},
      {"abc", "xyz", 3},   {"ab", "ba", 2},      {"a", "ab", 1},
  };
  for (KernelBackend backend : RunnableBackends()) {
    const KernelTable& k = KernelsFor(backend);
    for (const Case& c : cases) {
      EXPECT_EQ(k.edit_bytes(c.a.data(), c.a.size(), c.b.data(), c.b.size()),
                c.d)
          << BackendName(backend) << " '" << c.a << "' vs '" << c.b << "'";
    }
  }
}

TEST(EditKernelTest, WordBoundaryLengthsMatchScalarDp) {
  // The Myers kernel switches to multi-word bookkeeping past 64 symbols:
  // lengths 63/64/65 and 127/128/129 are where a carry or top-bit bug
  // would show. Compare against the scalar DP on random strings over a
  // small alphabet (maximizing matches, the hard case for Peq handling).
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> sym('a', 'd');
  const KernelTable& scalar = KernelsFor(KernelBackend::kScalar);
  for (size_t la : {1u, 31u, 63u, 64u, 65u, 100u, 127u, 128u, 129u, 200u}) {
    for (size_t lb : {0u, 1u, 63u, 64u, 65u, 129u}) {
      std::string a(la, 'x'), b(lb, 'x');
      for (char& c : a) c = static_cast<char>(sym(rng));
      for (char& c : b) c = static_cast<char>(sym(rng));
      const size_t expect =
          scalar.edit_bytes(a.data(), la, b.data(), lb);
      for (KernelBackend backend : RunnableBackends()) {
        const KernelTable& k = KernelsFor(backend);
        EXPECT_EQ(k.edit_bytes(a.data(), la, b.data(), lb), expect)
            << BackendName(backend) << " la=" << la << " lb=" << lb;
        // Symmetry (the kernel may swap pattern/text internally).
        EXPECT_EQ(k.edit_bytes(b.data(), lb, a.data(), la), expect)
            << BackendName(backend) << " swapped la=" << la << " lb=" << lb;
      }
    }
  }
}

TEST(EditKernelTest, U32SequencesWithOpenAlphabetMatchScalarDp) {
  // Interned token ids: sparse, unbounded alphabet — exercises the hashed
  // Peq rows (including text symbols absent from the pattern).
  std::mt19937 rng(13);
  const KernelTable& scalar = KernelsFor(KernelBackend::kScalar);
  for (int round = 0; round < 60; ++round) {
    std::uniform_int_distribution<size_t> len(0, 150);
    std::uniform_int_distribution<uint32_t> sym(0, round % 2 ? 5 : 1000000);
    std::vector<uint32_t> a(len(rng)), b(len(rng));
    for (uint32_t& v : a) v = sym(rng);
    for (uint32_t& v : b) v = sym(rng);
    const size_t expect =
        scalar.edit_u32(a.data(), a.size(), b.data(), b.size());
    for (KernelBackend backend : RunnableBackends()) {
      const KernelTable& k = KernelsFor(backend);
      EXPECT_EQ(k.edit_u32(a.data(), a.size(), b.data(), b.size()), expect)
          << BackendName(backend) << " round " << round;
    }
  }
}

TEST(ArgMinKernelTest, TiesResolveToTheLowestIndexOnEveryBackend) {
  // All-equal rows, duplicated minima at lane boundaries, and the minimum
  // planted at every position of an 19-element row.
  for (KernelBackend backend : RunnableBackends()) {
    const KernelTable& k = KernelsFor(backend);
    const std::vector<double> flat(17, 0.25);
    ArgMinResult r = k.argmin(flat.data(), flat.size());
    EXPECT_EQ(r.value, 0.25) << BackendName(backend);
    EXPECT_EQ(r.index, 0u) << BackendName(backend);

    for (size_t pos = 0; pos < 19; ++pos) {
      std::vector<double> v(19, 0.5);
      v[pos] = 0.125;
      v[(pos + 7) % 19] = pos == (pos + 7) % 19 ? 0.125 : 0.25;
      r = k.argmin(v.data(), v.size());
      EXPECT_EQ(r.value, 0.125) << BackendName(backend) << " pos=" << pos;
      EXPECT_EQ(r.index, pos) << BackendName(backend) << " pos=" << pos;
      // Duplicate the minimum later: the earlier index must still win.
      v[18] = 0.125;
      r = k.argmin(v.data(), v.size());
      EXPECT_EQ(r.index, std::min<size_t>(pos, 18))
          << BackendName(backend) << " pos=" << pos;
    }
  }
}

TEST(ArgMinKernelTest, RandomRowsMatchScalarAcrossWidths) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> value(0.0, 1.0);
  // Few distinct values => frequent exact ties, the adversarial case.
  std::uniform_int_distribution<int> coarse(0, 3);
  const KernelTable& scalar = KernelsFor(KernelBackend::kScalar);
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 12u, 16u, 17u, 64u, 65u,
                   257u}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<double> v(n);
      for (double& d : v) {
        d = round % 2 ? value(rng) : coarse(rng) * 0.25;
      }
      const ArgMinResult expect = scalar.argmin(v.data(), n);
      for (KernelBackend backend : RunnableBackends()) {
        const ArgMinResult got = KernelsFor(backend).argmin(v.data(), n);
        EXPECT_EQ(got.value, expect.value)
            << BackendName(backend) << " n=" << n;
        EXPECT_EQ(got.index, expect.index)
            << BackendName(backend) << " n=" << n;
      }
    }
  }
}

TEST(MaxAtKernelTest, GatherMaxMatchesScalarAcrossWidths) {
  std::mt19937 rng(55);
  std::uniform_real_distribution<double> value(0.0, 1.0);
  std::vector<double> row(512);
  for (double& d : row) d = value(rng);
  std::uniform_int_distribution<uint32_t> pick(0, 511);
  const KernelTable& scalar = KernelsFor(KernelBackend::kScalar);
  for (size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u, 100u}) {
    for (int round = 0; round < 10; ++round) {
      std::vector<uint32_t> idx(count);
      for (uint32_t& i : idx) i = pick(rng);
      const double expect = scalar.max_at(row.data(), idx.data(), count);
      for (KernelBackend backend : RunnableBackends()) {
        EXPECT_EQ(KernelsFor(backend).max_at(row.data(), idx.data(), count),
                  expect)
            << BackendName(backend) << " count=" << count;
      }
    }
  }
}

}  // namespace
}  // namespace dpe::common::simd
