#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::sql {
namespace {

// Round-trip property: parse(print(parse(text))) == parse(text), and printing
// is a fixed point.
class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, ParsePrintParse) {
  auto q1 = Parse(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam() << ": " << q1.status();
  std::string printed = ToSql(*q1);
  auto q2 = Parse(printed);
  ASSERT_TRUE(q2.ok()) << printed << ": " << q2.status();
  EXPECT_TRUE(q1->Equals(*q2)) << printed;
  EXPECT_EQ(printed, ToSql(*q2));  // fixed point
}

INSTANTIATE_TEST_SUITE_P(
    Queries, PrinterRoundTrip,
    ::testing::Values(
        "SELECT a FROM r",
        "SELECT * FROM r",
        "SELECT DISTINCT a, b FROM r",
        "SELECT a1 FROM r WHERE a2 > 5",
        "SELECT a FROM r WHERE x = 1 AND y = 2 OR z = 3",
        "SELECT a FROM r WHERE x = 1 AND (y = 2 OR z = 3)",
        "SELECT a FROM r WHERE NOT (x = 1 OR y = 2)",
        "SELECT a FROM r WHERE x BETWEEN 1 AND 5",
        "SELECT a FROM r WHERE x IN (1, 2, 3)",
        "SELECT a FROM r WHERE s = 'it''s'",
        "SELECT a FROM r WHERE d = 2.5 AND e > -3",
        "SELECT o.x, c.y FROM orders o JOIN customers c ON o.cid = c.cid",
        "SELECT city, COUNT(*) FROM t GROUP BY city",
        "SELECT SUM(x), AVG(y) FROM t WHERE z >= 10",
        "SELECT MIN(a), MAX(b) FROM t",
        "SELECT a FROM r ORDER BY a DESC, b LIMIT 7",
        "SELECT a FROM r WHERE x <> 9 ORDER BY x"));

TEST(PrinterTest, CanonicalText) {
  auto q = Parse("select  A1  from  R  where  A2>5").value();
  EXPECT_EQ(ToSql(q), "SELECT a1 FROM r WHERE a2 > 5");
}

TEST(PrinterTest, NestedPredicateParentheses) {
  auto q = Parse("SELECT a FROM r WHERE (x = 1 OR y = 2) AND z = 3").value();
  EXPECT_EQ(ToSql(q), "SELECT a FROM r WHERE (x = 1 OR y = 2) AND z = 3");
}

TEST(PrinterTest, PredicatePrinting) {
  auto p = Predicate::Between({"", "x"}, Literal::Int(1), Literal::Int(2));
  EXPECT_EQ(ToSql(*p), "x BETWEEN 1 AND 2");
}

TEST(PrinterTest, DoubleCanonicalForm) {
  EXPECT_EQ(Literal::Double(2.0).ToSql(), "2.0");  // lexes as float
  EXPECT_EQ(Literal::Double(0.5).ToSql(), "0.5");
  // Round-trip exactness.
  double v = 0.1 + 0.2;
  auto lit = Literal::Double(v);
  auto parsed = Parse("SELECT a FROM r WHERE x = " + lit.ToSql()).value();
  EXPECT_EQ(parsed.where->literal.double_value(), v);
}

TEST(LiteralTest, CanonicalBytesInjective) {
  EXPECT_NE(Literal::Int(5).CanonicalBytes(), Literal::String("5").CanonicalBytes());
  EXPECT_NE(Literal::Int(5).CanonicalBytes(), Literal::Double(5).CanonicalBytes());
  EXPECT_EQ(Literal::Int(5).CanonicalBytes(), Literal::Int(5).CanonicalBytes());
}

TEST(LiteralTest, CanonicalBytesRoundTrip) {
  for (const Literal& lit :
       {Literal::Int(-42), Literal::Double(3.25), Literal::String("a'b")}) {
    auto back = Literal::FromCanonicalBytes(lit.CanonicalBytes());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, lit);
  }
  EXPECT_FALSE(Literal::FromCanonicalBytes("junk").ok());
  EXPECT_FALSE(Literal::FromCanonicalBytes("x:1").ok());
}

}  // namespace
}  // namespace dpe::sql
