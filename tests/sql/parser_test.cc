#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace dpe::sql {
namespace {

TEST(ParserTest, MinimalSelect) {
  auto q = Parse("SELECT a FROM r").value();
  ASSERT_EQ(q.items.size(), 1u);
  EXPECT_EQ(q.items[0].column.name, "a");
  EXPECT_EQ(q.from.name, "r");
  EXPECT_EQ(q.where, nullptr);
}

TEST(ParserTest, PaperExample4) {
  auto q = Parse("SELECT A1 FROM R WHERE A2 > 5").value();
  EXPECT_EQ(q.items[0].column.name, "a1");
  EXPECT_EQ(q.from.name, "r");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, Predicate::Kind::kCompare);
  EXPECT_EQ(q.where->column.name, "a2");
  EXPECT_EQ(q.where->op, CompareOp::kGt);
  EXPECT_EQ(q.where->literal, Literal::Int(5));
}

TEST(ParserTest, StarAndDistinct) {
  auto q = Parse("SELECT DISTINCT * FROM t").value();
  EXPECT_TRUE(q.distinct);
  EXPECT_TRUE(q.items[0].star);
}

TEST(ParserTest, Aggregates) {
  auto q = Parse("SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(w) FROM t").value();
  ASSERT_EQ(q.items.size(), 5u);
  EXPECT_EQ(q.items[0].agg, AggFn::kCount);
  EXPECT_TRUE(q.items[0].star);
  EXPECT_EQ(q.items[1].agg, AggFn::kSum);
  EXPECT_EQ(q.items[1].column.name, "x");
  EXPECT_EQ(q.items[2].agg, AggFn::kAvg);
  EXPECT_EQ(q.items[3].agg, AggFn::kMin);
  EXPECT_EQ(q.items[4].agg, AggFn::kMax);
}

TEST(ParserTest, OnlyCountTakesStar) {
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, JoinWithQualifiedColumns) {
  auto q = Parse(
              "SELECT orders.oid, customers.city FROM orders "
              "JOIN customers ON orders.cid = customers.cid "
              "WHERE customers.city = 'berlin'")
              .value();
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].table.name, "customers");
  EXPECT_EQ(q.joins[0].left.relation, "orders");
  EXPECT_EQ(q.joins[0].left.name, "cid");
  EXPECT_EQ(q.joins[0].right.relation, "customers");
}

TEST(ParserTest, InnerJoinKeyword) {
  auto q = Parse("SELECT a.x FROM a INNER JOIN b ON a.k = b.k").value();
  EXPECT_EQ(q.joins.size(), 1u);
}

TEST(ParserTest, BooleanStructureWithPrecedence) {
  auto q = Parse("SELECT a FROM r WHERE x = 1 AND y = 2 OR z = 3").value();
  // OR binds loosest: (x=1 AND y=2) OR z=3.
  ASSERT_EQ(q.where->kind, Predicate::Kind::kOr);
  ASSERT_EQ(q.where->children.size(), 2u);
  EXPECT_EQ(q.where->children[0]->kind, Predicate::Kind::kAnd);
  EXPECT_EQ(q.where->children[1]->kind, Predicate::Kind::kCompare);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto q = Parse("SELECT a FROM r WHERE x = 1 AND (y = 2 OR z = 3)").value();
  ASSERT_EQ(q.where->kind, Predicate::Kind::kAnd);
  EXPECT_EQ(q.where->children[1]->kind, Predicate::Kind::kOr);
}

TEST(ParserTest, NotBetweenIn) {
  auto q = Parse(
              "SELECT a FROM r WHERE NOT x = 1 AND y BETWEEN 2 AND 8 "
              "AND z IN (1, 2, 3)")
              .value();
  ASSERT_EQ(q.where->kind, Predicate::Kind::kAnd);
  ASSERT_EQ(q.where->children.size(), 3u);
  EXPECT_EQ(q.where->children[0]->kind, Predicate::Kind::kNot);
  EXPECT_EQ(q.where->children[1]->kind, Predicate::Kind::kBetween);
  EXPECT_EQ(q.where->children[1]->low, Literal::Int(2));
  EXPECT_EQ(q.where->children[2]->kind, Predicate::Kind::kIn);
  EXPECT_EQ(q.where->children[2]->in_list.size(), 3u);
}

TEST(ParserTest, ColumnToColumnComparison) {
  auto q = Parse("SELECT a FROM r WHERE x = y").value();
  EXPECT_EQ(q.where->kind, Predicate::Kind::kColumnCompare);
  EXPECT_EQ(q.where->column.name, "x");
  EXPECT_EQ(q.where->column2.name, "y");
}

TEST(ParserTest, GroupOrderLimit) {
  auto q = Parse(
              "SELECT city, COUNT(*) FROM customers WHERE age > 30 "
              "GROUP BY city ORDER BY city DESC LIMIT 10")
              .value();
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0].name, "city");
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_FALSE(q.order_by[0].ascending);
  EXPECT_EQ(q.limit.value(), 10);
}

TEST(ParserTest, TableAlias) {
  auto q1 = Parse("SELECT c.x FROM customers c WHERE c.x = 1").value();
  EXPECT_EQ(q1.from.alias, "c");
  auto q2 = Parse("SELECT c.x FROM customers AS c").value();
  EXPECT_EQ(q2.from.alias, "c");
}

TEST(ParserTest, LiteralTypes) {
  auto q = Parse("SELECT a FROM r WHERE x = 5 AND y = 2.75 AND z = 'txt'").value();
  EXPECT_EQ(q.where->children[0]->literal, Literal::Int(5));
  EXPECT_EQ(q.where->children[1]->literal, Literal::Double(2.75));
  EXPECT_EQ(q.where->children[2]->literal, Literal::String("txt"));
}

TEST(ParserTest, NegativeConstants) {
  auto q = Parse("SELECT a FROM r WHERE x > -10").value();
  EXPECT_EQ(q.where->literal, Literal::Int(-10));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM r").ok());
  EXPECT_FALSE(Parse("SELECT a").ok());
  EXPECT_FALSE(Parse("SELECT a FROM r WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM r trailing junk").ok());
  EXPECT_FALSE(Parse("SELECT a FROM r LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT a FROM r JOIN s ON a < b").ok());  // only equi-join
}

TEST(ParserTest, CloneAndEquals) {
  auto q = Parse(
              "SELECT a, SUM(b) FROM r JOIN s ON r.k = s.k "
              "WHERE x BETWEEN 1 AND 5 OR NOT y = 2 GROUP BY a LIMIT 3")
              .value();
  SelectQuery copy = q.CloneValue();
  EXPECT_TRUE(q.Equals(copy));
  copy.limit = 4;
  EXPECT_FALSE(q.Equals(copy));
}

}  // namespace
}  // namespace dpe::sql
