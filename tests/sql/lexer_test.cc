#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace dpe::sql {
namespace {

std::vector<std::string> Lexemes(const std::string& text) {
  auto tokens = Lex(text).value();
  std::vector<std::string> out;
  for (const auto& t : tokens) out.push_back(t.lexeme);
  return out;
}

TEST(LexerTest, PaperExample4Query) {
  auto tokens = Lex("SELECT A1 FROM R WHERE A2 > 5").value();
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].lexeme, "SELECT");
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].lexeme, "a1");  // identifiers normalize to lower case
  EXPECT_EQ(tokens[6].kind, TokenKind::kOperator);
  EXPECT_EQ(tokens[6].lexeme, ">");
  EXPECT_EQ(tokens[7].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[7].lexeme, "5");
}

TEST(LexerTest, KeywordsNormalizeUpper) {
  EXPECT_EQ(Lexemes("select from where"),
            (std::vector<std::string>{"SELECT", "FROM", "WHERE"}));
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(Lexemes("a = 1 b <> 2 c < 3 d <= 4 e > 5 f >= 6"),
            (std::vector<std::string>{"a", "=", "1", "b", "<>", "2", "c", "<",
                                      "3", "d", "<=", "4", "e", ">", "5", "f",
                                      ">=", "6"}));
}

TEST(LexerTest, BangEqualsNormalizesToAngleBrackets) {
  EXPECT_EQ(Lexemes("a != 1"), (std::vector<std::string>{"a", "<>", "1"}));
}

TEST(LexerTest, NumbersIntFloatExponent) {
  auto tokens = Lex("1 2.5 3e4 1.5e-3 42").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[4].kind, TokenKind::kInteger);
}

TEST(LexerTest, NegativeNumberAfterOperator) {
  auto tokens = Lex("a > -5").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[2].lexeme, "-5");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("name = 'O''Brien'").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].lexeme, "'O''Brien'");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("a = 'oops").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Lex("a # b").ok());
}

TEST(LexerTest, QualifiedNamesSplitOnDot) {
  EXPECT_EQ(Lexemes("r.a1"), (std::vector<std::string>{"r", ".", "a1"}));
}

TEST(LexerTest, TokenSetDeduplicates) {
  auto set = TokenSet("SELECT a, a FROM r WHERE a = 1 OR a = 1").value();
  // {SELECT, a, ",", FROM, r, WHERE, =, 1, OR}
  EXPECT_EQ(set.size(), 9u);
  EXPECT_TRUE(set.contains("a"));
  EXPECT_TRUE(set.contains("1"));
  EXPECT_TRUE(set.contains("SELECT"));
}

TEST(LexerTest, EmptyInput) {
  EXPECT_TRUE(Lex("").value().empty());
  EXPECT_TRUE(Lex("   \t\n ").value().empty());
}

}  // namespace
}  // namespace dpe::sql
