#include "sql/features.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::sql {
namespace {

std::set<std::string> FeatureStrings(const std::string& text) {
  auto q = Parse(text).value();
  std::set<std::string> out;
  for (const auto& f : Features(q)) out.insert(f.ToString());
  return out;
}

TEST(FeaturesTest, PaperExample5) {
  // features(SELECT A1 FROM R WHERE A2 > 5) =
  //   {(SELECT, A1), (FROM, R), (WHERE, A2 >)}
  auto fs = FeatureStrings("SELECT A1 FROM R WHERE A2 > 5");
  EXPECT_EQ(fs, (std::set<std::string>{"(SELECT, a1)", "(FROM, r)",
                                       "(WHERE, a2, >)"}));
}

TEST(FeaturesTest, ConstantsAreDropped) {
  EXPECT_EQ(FeatureStrings("SELECT a FROM r WHERE x = 1"),
            FeatureStrings("SELECT a FROM r WHERE x = 999"));
  EXPECT_EQ(FeatureStrings("SELECT a FROM r WHERE x BETWEEN 1 AND 2"),
            FeatureStrings("SELECT a FROM r WHERE x BETWEEN 50 AND 60"));
  EXPECT_EQ(FeatureStrings("SELECT a FROM r WHERE x IN (1, 2)"),
            FeatureStrings("SELECT a FROM r WHERE x IN (7, 8, 9)"));
  EXPECT_EQ(FeatureStrings("SELECT a FROM r LIMIT 5"),
            FeatureStrings("SELECT a FROM r LIMIT 50"));
}

TEST(FeaturesTest, OperatorsAreKept) {
  EXPECT_NE(FeatureStrings("SELECT a FROM r WHERE x > 1"),
            FeatureStrings("SELECT a FROM r WHERE x < 1"));
  EXPECT_NE(FeatureStrings("SELECT a FROM r WHERE x = 1"),
            FeatureStrings("SELECT a FROM r WHERE x BETWEEN 1 AND 2"));
}

TEST(FeaturesTest, BooleanNestingIsFlattened) {
  EXPECT_EQ(FeatureStrings("SELECT a FROM r WHERE x = 1 AND y = 2"),
            FeatureStrings("SELECT a FROM r WHERE x = 3 OR y = 4"));
  EXPECT_EQ(FeatureStrings("SELECT a FROM r WHERE NOT x = 1"),
            FeatureStrings("SELECT a FROM r WHERE x = 1"));
}

TEST(FeaturesTest, AggregatesAndGrouping) {
  auto fs = FeatureStrings("SELECT city, COUNT(*) FROM t GROUP BY city");
  EXPECT_TRUE(fs.contains("(SELECT, city)"));
  EXPECT_TRUE(fs.contains("(AGG, COUNT, *)"));
  EXPECT_TRUE(fs.contains("(GROUPBY, city)"));
}

TEST(FeaturesTest, SumVsAvgDiffer) {
  EXPECT_NE(FeatureStrings("SELECT SUM(x) FROM t"),
            FeatureStrings("SELECT AVG(x) FROM t"));
}

TEST(FeaturesTest, JoinFeatures) {
  auto fs = FeatureStrings(
      "SELECT o.x FROM orders o JOIN customers c ON o.cid = c.cid");
  EXPECT_TRUE(fs.contains("(FROM, orders)"));
  EXPECT_TRUE(fs.contains("(FROM, customers)"));
  EXPECT_TRUE(fs.contains("(JOIN, o.cid, =, c.cid)"));
}

TEST(FeaturesTest, OrderByDirectionMatters) {
  EXPECT_NE(FeatureStrings("SELECT a FROM r ORDER BY a"),
            FeatureStrings("SELECT a FROM r ORDER BY a DESC"));
}

TEST(FeaturesTest, DistinctAndLimitMarkers) {
  auto fs = FeatureStrings("SELECT DISTINCT a FROM r LIMIT 5");
  EXPECT_TRUE(fs.contains("(DISTINCT)"));
  EXPECT_TRUE(fs.contains("(LIMIT)"));
}

TEST(FeaturesTest, PartsAreTaggedForEncryption) {
  auto q = Parse("SELECT a FROM r WHERE b > 1").value();
  for (const auto& f : Features(q)) {
    if (f.clause == "FROM") {
      EXPECT_EQ(f.parts[0].first, FeaturePartKind::kRelation);
    }
    if (f.clause == "WHERE") {
      EXPECT_EQ(f.parts[0].first, FeaturePartKind::kAttribute);
      EXPECT_EQ(f.parts[1].first, FeaturePartKind::kSymbol);
    }
  }
}

}  // namespace
}  // namespace dpe::sql
