// Fixture: production code reaching into the test tree.
#include "tests/scenario_test_util.h"
