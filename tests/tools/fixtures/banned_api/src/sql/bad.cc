// Fixture: banned C APIs, a non-root-relative include, and a throw in src/.
#include "badhelper.h"
#include <cstdio>
#include <cstring>

void F(char* dst, const char* src) {
  sprintf(dst, "%s", src);
  strcpy(dst, src);
  if (!dst) throw 1;
}
