// Fixture: deterministic randomness inside the crypto layer.
#include <random>

int Key() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

int Weak() { return rand(); }
