// Clean fixture: a legal down-edge (common -> obs) plus banned names that
// appear only inside comments and string literals — none of it may fire.
// Documentation may say rand() or srand() or sprintf or throw freely.
#ifndef OK_H_
#define OK_H_

#include "obs/log.h"

inline const char* Doc() {
  return "calling sprintf(buf) or rand() inside a string literal is fine";
}

#endif  // OK_H_
