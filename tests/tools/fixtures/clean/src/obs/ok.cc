// Clean fixture: obs may include exactly the allowlisted header-only
// common headers (the sanctioned obs -> common edge).
#include "common/backoff.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
