// Fixture: the laundering point — a common/ header reaching up into engine.
#include "engine/engine.h"
