// Fixture: the direct include is same-layer (clean), but the helper
// launders an engine back-edge — only the transitive pass can see it here.
#include "common/helper.h"
