// Fixture: common/status.h is not on the obs -> common allowlist.
#include "common/status.h"
