// Fixture: common must not reach up into engine (layer DAG back-edge).
#include "engine/engine.h"
