// dpe_lint: exact diagnostics and exit codes against the fixture trees
// under tests/tools/fixtures/, plus the gate itself — the real repo tree
// must lint clean.
//
// The linter binary and the fixture/repo paths arrive as compile
// definitions from CMake (DPE_LINT_BINARY, DPE_LINT_FIXTURES,
// DPE_LINT_REPO_ROOT), so this suite runs the same binary ctest's `lint`
// test runs.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string stdout_text;
};

LintRun RunLint(const std::string& target) {
  // Diagnostics go to stdout; stderr only carries I/O errors, which none of
  // these runs should produce — keep it visible so a failure explains itself.
  const std::string cmd = std::string(DPE_LINT_BINARY) + " " + target;
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot run: " << cmd;
  if (pipe == nullptr) return run;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.stdout_text.append(buf, n);
  }
  const int raw = pclose(pipe);
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(DPE_LINT_FIXTURES) + "/" + name;
}

TEST(DpeLintTest, RealTreeIsClean) {
  const LintRun run = RunLint(DPE_LINT_REPO_ROOT);
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(DpeLintTest, CleanFixturePasses) {
  // The clean tree mentions rand()/sprintf in comments and string literals;
  // stripping must keep those from firing.
  const LintRun run = RunLint(Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(DpeLintTest, LayerBackEdgeIsReported) {
  const LintRun run = RunLint(Fixture("layer_backedge"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.stdout_text,
            "src/common/bad.cc:2: layer-dag: layer 'common' must not include "
            "\"engine/engine.h\" (allowed: self, obs)\n"
            "src/obs/bad.cc:2: layer-dag: layer 'obs' must not include "
            "\"common/status.h\" (allowed: self)\n");
}

TEST(DpeLintTest, LaunderedTransitiveBackEdgeIsReported) {
  // bad.cc's only direct include is same-layer (clean); the helper header
  // it pulls in reaches up into engine. The transitive rule must fire at
  // bad.cc's include line with the laundering chain, and the plain rule
  // still fires at the helper's own forbidden include.
  const LintRun run = RunLint(Fixture("transitive_backedge"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.stdout_text,
            "src/common/bad.cc:3: layer-dag-transitive: layer 'common' "
            "reaches forbidden header \"engine/engine.h\" through its "
            "includes (chain: \"common/helper.h\" -> \"engine/engine.h\")\n"
            "src/common/helper.h:2: layer-dag: layer 'common' must not "
            "include \"engine/engine.h\" (allowed: self, obs)\n");
}

TEST(DpeLintTest, CryptoRandomnessIsReported) {
  const LintRun run = RunLint(Fixture("crypto_rand"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.stdout_text,
            "src/crypto/bad.cc:5: crypto-random: deterministic randomness "
            "('mt19937') in src/crypto/: key/nonce material must come from "
            "crypto/csprng.h (OS entropy)\n"
            "src/crypto/bad.cc:9: banned-rand: rand() is banned: use "
            "std::mt19937 (seeded, reproducible) or crypto/csprng.h\n");
}

TEST(DpeLintTest, TestIncludeFromSrcIsReported) {
  const LintRun run = RunLint(Fixture("test_include"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.stdout_text,
            "src/db/bad.cc:2: test-include: src/ must not include test code "
            "(\"tests/scenario_test_util.h\"); move shared helpers into a "
            "library\n");
}

TEST(DpeLintTest, BannedApisAndThrowAreReported) {
  const LintRun run = RunLint(Fixture("banned_api"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.stdout_text,
            "src/sql/bad.cc:2: include-hygiene: quoted include "
            "\"badhelper.h\" is not repo-root-relative (expected "
            "\"<layer>/file.h\"); use <...> for system headers\n"
            "src/sql/bad.cc:7: banned-api: sprintf is banned: unbounded "
            "write, use snprintf or std::format\n"
            "src/sql/bad.cc:8: banned-api: strcpy is banned: unbounded "
            "write, use std::string or strncpy\n"
            "src/sql/bad.cc:9: banned-throw: exceptions must not cross API "
            "boundaries: return Status / Result<T> (common/status.h "
            "contract)\n");
}

TEST(DpeLintTest, MissingDirectoryIsUsageError) {
  const LintRun run =
      RunLint(Fixture("no_such_fixture_dir") + " 2>/dev/null");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_EQ(run.stdout_text, "");
}

}  // namespace
