// Definition-1 end-to-end checks: for every Table-I scheme and both
// workloads, plaintext and ciphertext distance matrices are identical.

#include <gtest/gtest.h>

#include "core/dpe.h"
#include "workload/scenarios.h"

namespace dpe::core {
namespace {

struct Case {
  MeasureKind measure;
  bool skyserver;
};

class DpePreservation : public ::testing::TestWithParam<Case> {
 protected:
  static const workload::Scenario& Shop() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 42;
      opt.rows_per_relation = 40;
      opt.log_size = 30;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static const workload::Scenario& Sky() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 43;
      opt.rows_per_relation = 40;
      opt.log_size = 30;
      return workload::MakeSkyServerScenario(opt).value();
    }();
    return s;
  }
};

TEST_P(DpePreservation, MatricesAreIdentical) {
  const Case c = GetParam();
  const workload::Scenario& s = c.skyserver ? Sky() : Shop();
  crypto::KeyManager keys("dpe-preservation");
  LogEncryptor::Options options;
  options.paillier_bits = 256;
  options.ope_range_bits = 80;
  options.rng_seed = "dpe";
  auto enc = LogEncryptor::Create(CanonicalScheme(c.measure), keys, s.database,
                                  s.log, s.domains, options)
                 .value();
  auto report =
      CheckDistancePreservation(c.measure, enc, s.log, s.database, s.domains)
          .value();
  EXPECT_EQ(report.max_abs_delta, 0.0)
      << MeasureKindName(c.measure) << " on "
      << (c.skyserver ? "skyserver" : "shop");
  EXPECT_TRUE(report.exact());
  EXPECT_EQ(report.pair_count, s.log.size() * (s.log.size() - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasuresBothWorkloads, DpePreservation,
    ::testing::Values(Case{MeasureKind::kToken, false},
                      Case{MeasureKind::kStructure, false},
                      Case{MeasureKind::kResult, false},
                      Case{MeasureKind::kAccessArea, false},
                      Case{MeasureKind::kToken, true},
                      Case{MeasureKind::kStructure, true},
                      Case{MeasureKind::kResult, true},
                      Case{MeasureKind::kAccessArea, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(MeasureKindName(info.param.measure)) == "access-area"
                 ? std::string("access_area") +
                       (info.param.skyserver ? "_sky" : "_shop")
                 : std::string(MeasureKindName(info.param.measure)) +
                       (info.param.skyserver ? "_sky" : "_shop");
    });

}  // namespace
}  // namespace dpe::core
