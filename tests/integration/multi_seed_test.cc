// Multi-seed robustness: Definition-1 preservation is a ∀-claim, so it must
// hold on every generated workload, not just the seeds the other tests use.

#include <gtest/gtest.h>

#include "core/dpe.h"
#include "workload/scenarios.h"

namespace dpe::core {
namespace {

struct SeedCase {
  uint64_t seed;
  MeasureKind measure;
};

class MultiSeedDpe : public ::testing::TestWithParam<SeedCase> {};

TEST_P(MultiSeedDpe, PreservationHolds) {
  const SeedCase c = GetParam();
  workload::ScenarioOptions sopt;
  sopt.seed = c.seed;
  sopt.rows_per_relation = 30;
  sopt.log_size = 20;
  auto s = workload::MakeShopScenario(sopt).value();

  crypto::KeyManager keys("multi-seed-" + std::to_string(c.seed));
  LogEncryptor::Options options;
  options.paillier_bits = 256;
  options.ope_range_bits = 80;
  options.rng_seed = "seed-sweep";
  auto enc = LogEncryptor::Create(CanonicalScheme(c.measure), keys, s.database,
                                  s.log, s.domains, options)
                 .value();
  auto report =
      CheckDistancePreservation(c.measure, enc, s.log, s.database, s.domains)
          .value();
  EXPECT_EQ(report.max_abs_delta, 0.0)
      << MeasureKindName(c.measure) << " seed " << c.seed;
}

std::vector<SeedCase> AllCases() {
  std::vector<SeedCase> out;
  for (uint64_t seed : {1001u, 2002u, 3003u, 4004u}) {
    for (MeasureKind m : {MeasureKind::kToken, MeasureKind::kStructure,
                          MeasureKind::kResult, MeasureKind::kAccessArea}) {
      out.push_back({seed, m});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiSeedDpe, ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<SeedCase>& info) {
                           std::string n = MeasureKindName(info.param.measure);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n + "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace dpe::core
