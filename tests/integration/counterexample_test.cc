// Negative integration tests: wrong class choices genuinely break distance
// preservation (so the Def.-6 search selects on real signal), plus the
// Table-I regeneration smoke check.

#include <gtest/gtest.h>

#include "core/appropriate.h"
#include "core/dpe.h"
#include "sql/parser.h"
#include "workload/scenarios.h"

namespace dpe::core {
namespace {

class CounterexampleTest : public ::testing::Test {
 protected:
  static const workload::Scenario& Scenario() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 55;
      opt.rows_per_relation = 30;
      opt.log_size = 25;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static Result<double> MaxDelta(const SchemeSpec& spec) {
    return MaxDeltaOn(spec, Scenario().log);
  }

  static Result<double> MaxDeltaOn(const SchemeSpec& spec,
                                   const std::vector<sql::SelectQuery>& log) {
    static crypto::KeyManager keys("counterexample-test");
    LogEncryptor::Options options;
    options.paillier_bits = 256;
    options.ope_range_bits = 80;
    options.rng_seed = "ctr";
    DPE_ASSIGN_OR_RETURN(
        LogEncryptor enc,
        LogEncryptor::Create(spec, keys, Scenario().database, log,
                             Scenario().domains, options));
    DPE_ASSIGN_OR_RETURN(
        DpeCheckReport report,
        CheckDistancePreservation(spec.measure, enc, log, Scenario().database,
                                  Scenario().domains));
    return report.max_abs_delta;
  }
};

TEST_F(CounterexampleTest, ProbConstantsBreakTokenDistance) {
  SchemeSpec spec = CanonicalScheme(MeasureKind::kToken);
  spec.uniform_const = crypto::PpeClass::kProb;
  auto delta = MaxDelta(spec);
  ASSERT_TRUE(delta.ok());
  EXPECT_GT(*delta, 0.0);
}

TEST_F(CounterexampleTest, PerAttributeDetKeysBreakTokenDistance) {
  // The crafted counterexample: the literal 25 occurs under two different
  // attributes, so plaintext token sets share it but per-attribute images
  // differ.
  std::vector<sql::SelectQuery> log;
  log.push_back(
      sql::Parse("SELECT cid FROM customers WHERE age = 25").value());
  log.push_back(
      sql::Parse("SELECT oid FROM orders WHERE quantity = 25").value());

  SchemeSpec broken = CanonicalScheme(MeasureKind::kToken);
  broken.global_const_key = false;
  auto delta = MaxDeltaOn(broken, log);
  ASSERT_TRUE(delta.ok());
  EXPECT_GT(*delta, 0.0) << "same literal under two attributes must collide";

  // Sanity inversion: the global key preserves the same pair exactly.
  auto good = MaxDeltaOn(CanonicalScheme(MeasureKind::kToken), log);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 0.0);
}

TEST_F(CounterexampleTest, ProbConstantsDoNotBreakStructureDistance) {
  // Sanity inversion: structure ignores constants entirely.
  SchemeSpec spec = CanonicalScheme(MeasureKind::kStructure);
  auto delta = MaxDelta(spec);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, 0.0);
}

TEST_F(CounterexampleTest, ProbConstantsBreakAccessAreaDistance) {
  SchemeSpec spec = CanonicalScheme(MeasureKind::kAccessArea);
  spec.const_mode = ConstMode::kUniform;
  spec.uniform_const = crypto::PpeClass::kProb;
  spec.global_const_key = false;
  auto delta = MaxDelta(spec);
  ASSERT_TRUE(delta.ok());
  EXPECT_GT(*delta, 0.0);
}

TEST_F(CounterexampleTest, UniformDetBreaksAccessAreaRanges) {
  // DET endpoints are not order-comparable: range overlap relations change.
  SchemeSpec spec = CanonicalScheme(MeasureKind::kAccessArea);
  spec.const_mode = ConstMode::kUniform;
  spec.uniform_const = crypto::PpeClass::kDet;
  spec.global_const_key = false;
  auto delta = MaxDelta(spec);
  ASSERT_TRUE(delta.ok());
  EXPECT_GT(*delta, 0.0);
}

TEST_F(CounterexampleTest, ProbConstantsBreakResultDistance) {
  SchemeSpec spec = CanonicalScheme(MeasureKind::kResult);
  spec.const_mode = ConstMode::kUniform;
  spec.uniform_const = crypto::PpeClass::kProb;
  spec.global_const_key = false;
  auto delta = MaxDelta(spec);
  // Either the provider-side computation fails outright (no executable
  // encrypted DB in uniform mode) or distances change; both are "breaks".
  if (delta.ok()) {
    EXPECT_GT(*delta, 0.0);
  } else {
    SUCCEED();
  }
}

TEST_F(CounterexampleTest, CountNeverMatchesProjectedValues) {
  // Kind-aware result tuples: a COUNT scalar that numerically equals a
  // projected value does NOT count as overlap — on either side. (The
  // provider computes counts in the clear and cannot map them into the DET
  // value space, so any CryptDB-style scheme needs this semantics; we apply
  // it identically on the plaintext side.)
  std::vector<sql::SelectQuery> log;
  log.push_back(sql::Parse("SELECT cid FROM customers WHERE cid = 7").value());
  log.push_back(
      sql::Parse("SELECT COUNT(*) FROM orders WHERE quantity <= 11").value());
  auto delta = MaxDeltaOn(CanonicalScheme(MeasureKind::kResult), log);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_EQ(*delta, 0.0);
}

TEST_F(CounterexampleTest, DocumentedResidualEqualSumsAcrossRowSets) {
  // The HOM residual (DESIGN.md §2): two SUM queries over *different* row
  // sets with *equal* sums overlap on the plaintext side but their Paillier
  // folds differ. Def. 4 (result equivalence) still holds — both decrypt to
  // the same sum — but Def. 1 does not for such crafted pairs. This test
  // documents the boundary rather than hiding it.
  std::vector<sql::SelectQuery> log;
  // Row sets {cid=1..k} vs {cid=k+1..m} can be tuned to equal quantity sums
  // only by luck; instead compare a query with itself syntactically altered
  // so the row sets are identical (equal fold -> preserved), and disjoint
  // row sets (distinct sums w.h.p. -> both sides disjoint -> preserved).
  log.push_back(
      sql::Parse("SELECT SUM(quantity) FROM orders WHERE oid <= 20").value());
  log.push_back(
      sql::Parse("SELECT SUM(quantity) FROM orders WHERE NOT oid > 20").value());
  log.push_back(
      sql::Parse("SELECT SUM(quantity) FROM orders WHERE oid > 20").value());
  auto delta = MaxDeltaOn(CanonicalScheme(MeasureKind::kResult), log);
  ASSERT_TRUE(delta.ok()) << delta.status();
  // Identical row sets -> identical Paillier folds; disjoint sums differ on
  // both sides: exact preservation for this log.
  EXPECT_EQ(*delta, 0.0);
}

TEST_F(CounterexampleTest, RegeneratedTableIMatchesPaper) {
  AppropriateSearchOptions options;
  options.seed = 4242;
  options.rows_per_relation = 40;
  options.log_size = 30;
  auto rows = RegenerateTableI(options).value();
  ASSERT_EQ(rows.size(), 4u);

  EXPECT_EQ(rows[0].measure_name, "token");
  EXPECT_EQ(rows[0].enc_rel, "DET");
  EXPECT_EQ(rows[0].enc_attr, "DET");
  EXPECT_EQ(rows[0].enc_const, "DET");

  EXPECT_EQ(rows[1].measure_name, "structure");
  EXPECT_EQ(rows[1].enc_rel, "DET");
  EXPECT_EQ(rows[1].enc_const, "PROB");

  EXPECT_EQ(rows[2].measure_name, "result");
  EXPECT_EQ(rows[2].enc_rel, "DET");
  EXPECT_EQ(rows[2].enc_const, "via CryptDB");

  EXPECT_EQ(rows[3].measure_name, "access-area");
  EXPECT_EQ(rows[3].enc_rel, "DET");
  EXPECT_EQ(rows[3].enc_const, "via CryptDB, except HOM");

  // The audit trail shows that PROB names were tried and failed everywhere.
  for (const auto& row : rows) {
    bool prob_rel_failed = false;
    for (const auto& audit : row.audit) {
      if (audit.slot == "EncRel" && audit.candidate == "PROB") {
        prob_rel_failed = !audit.preserves;
      }
    }
    EXPECT_TRUE(prob_rel_failed) << row.measure_name;
  }

  std::string rendered = RenderTableI(rows);
  EXPECT_NE(rendered.find("via CryptDB, except HOM"), std::string::npos);
}

}  // namespace
}  // namespace dpe::core
