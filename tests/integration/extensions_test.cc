// Integration tests for the two extensions beyond the paper's case study:
//  * Levenshtein query-string distance (paper Example 2's alternative):
//    token-sequence granularity is preserved by the token scheme, character
//    granularity is not — the measured reason the paper works on token sets.
//  * Association-rule mining over encrypted logs (paper §V / [17]):
//    structural features as transactions; the DET-encrypted log yields
//    bijectively-renamed rules with identical statistics.

#include <gtest/gtest.h>

#include "core/dpe.h"
#include "distance/levenshtein_distance.h"
#include "mining/association.h"
#include "sql/features.h"
#include "workload/scenarios.h"

namespace dpe::core {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static const workload::Scenario& Scenario() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 99;
      opt.rows_per_relation = 30;
      opt.log_size = 30;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static const std::vector<sql::SelectQuery>& EncryptedLog() {
    static std::vector<sql::SelectQuery> log = [] {
      static crypto::KeyManager keys("extensions-test");
      LogEncryptor::Options options;
      options.rng_seed = "ext";
      auto enc = LogEncryptor::Create(CanonicalScheme(MeasureKind::kToken),
                                      keys, Scenario().database, Scenario().log,
                                      Scenario().domains, options)
                     .value();
      return enc.EncryptAll().value().encrypted_log;
    }();
    return log;
  }
};

TEST_F(ExtensionsTest, TokenSequenceLevenshteinIsPreservedByTokenScheme) {
  distance::LevenshteinDistance measure(
      distance::LevenshteinDistance::Granularity::kTokenSequence);
  auto plain =
      distance::DistanceMatrix::Compute(Scenario().log, measure, {}).value();
  auto enc =
      distance::DistanceMatrix::Compute(EncryptedLog(), measure, {}).value();
  EXPECT_EQ(distance::DistanceMatrix::MaxAbsDifference(plain, enc).value(), 0.0);
}

TEST_F(ExtensionsTest, CharacterLevenshteinIsNotPreserved) {
  distance::LevenshteinDistance measure(
      distance::LevenshteinDistance::Granularity::kCharacter);
  auto plain =
      distance::DistanceMatrix::Compute(Scenario().log, measure, {}).value();
  auto enc =
      distance::DistanceMatrix::Compute(EncryptedLog(), measure, {}).value();
  EXPECT_GT(distance::DistanceMatrix::MaxAbsDifference(plain, enc).value(), 0.0)
      << "ciphertext lexeme lengths differ from plaintext lengths";
}

namespace {
std::vector<mining::Transaction> FeatureTransactions(
    const std::vector<sql::SelectQuery>& log) {
  std::vector<mining::Transaction> out;
  for (const auto& q : log) {
    mining::Transaction t;
    for (const auto& f : sql::Features(q)) t.insert(f.ToString());
    out.push_back(std::move(t));
  }
  return out;
}
}  // namespace

TEST_F(ExtensionsTest, AssociationRulesOverEncryptedLogMatchStatistics) {
  mining::AprioriOptions opt;
  opt.min_support = 0.15;
  opt.min_confidence = 0.6;
  opt.max_itemset_size = 3;
  auto plain =
      mining::Apriori(FeatureTransactions(Scenario().log), opt).value();
  auto enc = mining::Apriori(FeatureTransactions(EncryptedLog()), opt).value();

  ASSERT_GT(plain.rules.size(), 0u) << "workload should produce rules";
  ASSERT_EQ(plain.rules.size(), enc.rules.size());
  ASSERT_EQ(plain.frequent.size(), enc.frequent.size());

  auto stats = [](const mining::AprioriResult& r) {
    std::multiset<std::tuple<size_t, size_t, double, double>> out;
    for (const auto& rule : r.rules) {
      out.insert({rule.lhs.size(), rule.rhs.size(), rule.support,
                  rule.confidence});
    }
    return out;
  };
  EXPECT_EQ(stats(plain), stats(enc));

  auto supports = [](const mining::AprioriResult& r) {
    std::multiset<std::pair<size_t, double>> out;
    for (const auto& f : r.frequent) out.insert({f.items.size(), f.support});
    return out;
  };
  EXPECT_EQ(supports(plain), supports(enc));
}

TEST_F(ExtensionsTest, AssociationRulesDegradeUnderProbNames) {
  // Inverse check: with PROB names (each occurrence fresh), feature items
  // never repeat across queries and no frequent itemsets survive.
  static crypto::KeyManager keys("extensions-test-prob");
  SchemeSpec spec = CanonicalScheme(MeasureKind::kStructure);
  spec.enc_rel = crypto::PpeClass::kProb;
  spec.enc_attr = crypto::PpeClass::kProb;
  LogEncryptor::Options options;
  options.rng_seed = "ext-prob";
  auto enc = LogEncryptor::Create(spec, keys, Scenario().database,
                                  Scenario().log, Scenario().domains, options)
                 .value();
  auto artifacts = enc.EncryptAll().value();

  mining::AprioriOptions opt;
  opt.min_support = 0.15;
  opt.min_confidence = 0.6;
  auto plain =
      mining::Apriori(FeatureTransactions(Scenario().log), opt).value();
  auto scrambled =
      mining::Apriori(FeatureTransactions(artifacts.encrypted_log), opt).value();
  EXPECT_GT(plain.frequent.size(), scrambled.frequent.size());
}

}  // namespace
}  // namespace dpe::core
