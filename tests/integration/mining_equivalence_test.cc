// The paper's headline claim: "the mining results on cipher-text and on
// plain-text data are the same. For instance, data items are assigned to the
// same clusters." Checked for k-medoids, DBSCAN, complete-link, DB(p,D)
// outliers and kNN, across all four measures.

#include <gtest/gtest.h>

#include "core/dpe.h"
#include "mining/dbscan.h"
#include "mining/hierarchical.h"
#include "mining/kmedoids.h"
#include "mining/knn.h"
#include "mining/outlier.h"
#include "mining/partition.h"
#include "workload/scenarios.h"

namespace dpe::core {
namespace {

class MiningEquivalence : public ::testing::TestWithParam<MeasureKind> {
 protected:
  static const workload::Scenario& Scenario() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 77;
      opt.rows_per_relation = 40;
      opt.log_size = 30;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static const DpeMatrices& Matrices(MeasureKind kind) {
    static std::map<MeasureKind, DpeMatrices> cache;
    auto it = cache.find(kind);
    if (it == cache.end()) {
      crypto::KeyManager keys("mining-equivalence");
      LogEncryptor::Options options;
      options.paillier_bits = 256;
      options.ope_range_bits = 80;
      options.rng_seed = "mine";
      auto enc = LogEncryptor::Create(CanonicalScheme(kind), keys,
                                      Scenario().database, Scenario().log,
                                      Scenario().domains, options)
                     .value();
      auto matrices = ComputeBothMatrices(kind, enc, Scenario().log,
                                          Scenario().database, Scenario().domains)
                          .value();
      it = cache.emplace(kind, std::move(matrices)).first;
    }
    return it->second;
  }
};

TEST_P(MiningEquivalence, KMedoidsSameClusters) {
  const DpeMatrices& m = Matrices(GetParam());
  for (size_t k : {2u, 3u, 5u}) {
    mining::KMedoidsOptions opt;
    opt.k = k;
    auto plain = mining::KMedoids(m.plain, opt).value();
    auto enc = mining::KMedoids(m.encrypted, opt).value();
    EXPECT_TRUE(mining::SamePartition(plain.labels, enc.labels)) << "k=" << k;
    EXPECT_EQ(mining::RandIndex(plain.labels, enc.labels), 1.0);
    EXPECT_EQ(plain.medoids, enc.medoids);
  }
}

TEST_P(MiningEquivalence, DbscanSameClustersAndNoise) {
  const DpeMatrices& m = Matrices(GetParam());
  for (double eps : {0.2, 0.4, 0.6}) {
    mining::DbscanOptions opt;
    opt.epsilon = eps;
    opt.min_points = 3;
    auto plain = mining::Dbscan(m.plain, opt).value();
    auto enc = mining::Dbscan(m.encrypted, opt).value();
    EXPECT_EQ(plain.labels, enc.labels) << "eps=" << eps;
    EXPECT_EQ(plain.cluster_count, enc.cluster_count);
  }
}

TEST_P(MiningEquivalence, CompleteLinkSameDendrogram) {
  const DpeMatrices& m = Matrices(GetParam());
  auto plain = mining::CompleteLink(m.plain).value();
  auto enc = mining::CompleteLink(m.encrypted).value();
  ASSERT_EQ(plain.merges.size(), enc.merges.size());
  for (size_t i = 0; i < plain.merges.size(); ++i) {
    EXPECT_EQ(plain.merges[i].left, enc.merges[i].left) << i;
    EXPECT_EQ(plain.merges[i].right, enc.merges[i].right) << i;
    EXPECT_EQ(plain.merges[i].distance, enc.merges[i].distance) << i;
  }
  for (size_t k : {2u, 4u}) {
    EXPECT_EQ(plain.CutK(k).value(), enc.CutK(k).value());
  }
}

TEST_P(MiningEquivalence, OutliersSameSet) {
  const DpeMatrices& m = Matrices(GetParam());
  for (double d : {0.4, 0.6, 0.8}) {
    mining::OutlierOptions opt;
    opt.p = 0.8;
    opt.d = d;
    auto plain = mining::DistanceBasedOutliers(m.plain, opt).value();
    auto enc = mining::DistanceBasedOutliers(m.encrypted, opt).value();
    EXPECT_EQ(plain.outliers, enc.outliers) << "D=" << d;
  }
}

TEST_P(MiningEquivalence, KnnSameNeighbors) {
  const DpeMatrices& m = Matrices(GetParam());
  for (size_t i = 0; i < m.plain.size(); i += 7) {
    EXPECT_EQ(mining::NearestNeighbors(m.plain, i, 5).value(),
              mining::NearestNeighbors(m.encrypted, i, 5).value())
        << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MiningEquivalence,
                         ::testing::Values(MeasureKind::kToken,
                                           MeasureKind::kStructure,
                                           MeasureKind::kResult,
                                           MeasureKind::kAccessArea),
                         [](const ::testing::TestParamInfo<MeasureKind>& info) {
                           std::string n = MeasureKindName(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace dpe::core
