#include "distance/levenshtein_distance.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::distance {
namespace {

std::vector<std::string> Chars(const std::string& s) {
  std::vector<std::string> out;
  for (char c : s) out.emplace_back(1, c);
  return out;
}

TEST(EditDistanceTest, ClassicExamples) {
  EXPECT_EQ(EditDistance(Chars("kitten"), Chars("sitting")), 3u);
  EXPECT_EQ(EditDistance(Chars("flaw"), Chars("lawn")), 2u);
  EXPECT_EQ(EditDistance(Chars(""), Chars("abc")), 3u);
  EXPECT_EQ(EditDistance(Chars("same"), Chars("same")), 0u);
}

TEST(EditDistanceTest, MetricPropertiesOnSamples) {
  std::vector<std::vector<std::string>> samples = {
      Chars("select"), Chars("selects"), Chars("elect"), Chars(""),
      Chars("from")};
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
      for (const auto& c : samples) {
        EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
      }
    }
  }
}

class LevenshteinMeasureTest : public ::testing::Test {
 protected:
  double D(const std::string& a, const std::string& b,
           LevenshteinDistance::Granularity g) {
    LevenshteinDistance measure(g);
    return measure
        .Distance(sql::Parse(a).value(), sql::Parse(b).value(), MeasureContext{})
        .value();
  }
};

TEST_F(LevenshteinMeasureTest, TokenSequenceGranularity) {
  // Q1/Q2 differ in one token of eight: d = 1/8.
  EXPECT_DOUBLE_EQ(D("SELECT a FROM r WHERE b = 1", "SELECT a FROM r WHERE b = 2",
                     LevenshteinDistance::Granularity::kTokenSequence),
                   1.0 / 8.0);
  EXPECT_EQ(D("SELECT a FROM r", "SELECT a FROM r",
              LevenshteinDistance::Granularity::kTokenSequence),
            0.0);
}

TEST_F(LevenshteinMeasureTest, OrderMattersUnlikeTokenSets) {
  // Same token SET, different sequences -> token-set distance would be 0,
  // Levenshtein sees the reordering.
  double d = D("SELECT a, b FROM r", "SELECT b, a FROM r",
               LevenshteinDistance::Granularity::kTokenSequence);
  EXPECT_GT(d, 0.0);
}

TEST_F(LevenshteinMeasureTest, CharacterGranularity) {
  double d = D("SELECT a FROM r", "SELECT ab FROM r",
               LevenshteinDistance::Granularity::kCharacter);
  EXPECT_NEAR(d, 1.0 / 16.0, 1e-9);  // one inserted char over 16
}

TEST_F(LevenshteinMeasureTest, NamesAndBounds) {
  LevenshteinDistance token_measure;
  LevenshteinDistance char_measure(LevenshteinDistance::Granularity::kCharacter);
  EXPECT_EQ(token_measure.Name(), "levenshtein-token");
  EXPECT_EQ(char_measure.Name(), "levenshtein-char");
  double d = D("SELECT a FROM r", "SELECT z9 FROM qqq WHERE x = 1",
               LevenshteinDistance::Granularity::kTokenSequence);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

}  // namespace
}  // namespace dpe::distance
