#include <gtest/gtest.h>

#include "distance/structure_distance.h"
#include "distance/token_distance.h"
#include "sql/parser.h"

namespace dpe::distance {
namespace {

double TokenD(const std::string& a, const std::string& b) {
  TokenDistance measure;
  return measure
      .Distance(sql::Parse(a).value(), sql::Parse(b).value(), MeasureContext{})
      .value();
}

double StructD(const std::string& a, const std::string& b) {
  StructureDistance measure;
  return measure
      .Distance(sql::Parse(a).value(), sql::Parse(b).value(), MeasureContext{})
      .value();
}

TEST(TokenDistanceTest, IdenticalQueriesAreAtDistanceZero) {
  EXPECT_EQ(TokenD("SELECT a FROM r WHERE b = 1", "SELECT a FROM r WHERE b = 1"),
            0.0);
}

TEST(TokenDistanceTest, WhitespaceAndCaseDoNotMatter) {
  EXPECT_EQ(TokenD("select  A from R", "SELECT a FROM r"), 0.0);
}

TEST(TokenDistanceTest, Definition3Worked) {
  // Q1: tokens {SELECT,a,FROM,r,WHERE,b,=,1}  (8)
  // Q2: tokens {SELECT,a,FROM,r,WHERE,b,=,2}  (8)
  // intersection 7, union 9 -> d = 2/9.
  EXPECT_DOUBLE_EQ(TokenD("SELECT a FROM r WHERE b = 1",
                          "SELECT a FROM r WHERE b = 2"),
                   2.0 / 9.0);
}

TEST(TokenDistanceTest, CompletelyDifferentQueries) {
  double d = TokenD("SELECT a FROM r", "SELECT b FROM s");
  // Shared: SELECT, FROM -> 2 of 6 union -> d = 2/3.
  EXPECT_DOUBLE_EQ(d, 2.0 / 3.0);
}

TEST(TokenDistanceTest, RangeOfValues) {
  double d = TokenD("SELECT a, b FROM r WHERE x BETWEEN 1 AND 2",
                    "SELECT a FROM r WHERE x = 1");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(StructureDistanceTest, ConstantsDoNotMatter) {
  EXPECT_EQ(StructD("SELECT a FROM r WHERE b = 1", "SELECT a FROM r WHERE b = 2"),
            0.0);
  EXPECT_EQ(StructD("SELECT a FROM r WHERE b BETWEEN 1 AND 5",
                    "SELECT a FROM r WHERE b BETWEEN 100 AND 200"),
            0.0);
}

TEST(StructureDistanceTest, OperatorsMatter) {
  EXPECT_GT(StructD("SELECT a FROM r WHERE b > 1", "SELECT a FROM r WHERE b < 1"),
            0.0);
}

TEST(StructureDistanceTest, Example5Worked) {
  // features(Q1) = {(SELECT,a1),(FROM,r),(WHERE,a2 >)}
  // features(Q2) = {(SELECT,a1),(FROM,r)}
  // intersection 2, union 3 -> d = 1/3.
  EXPECT_DOUBLE_EQ(
      StructD("SELECT a1 FROM r WHERE a2 > 5", "SELECT a1 FROM r"), 1.0 / 3.0);
}

TEST(StructureDistanceTest, AggregationShapesDiffer) {
  EXPECT_GT(StructD("SELECT SUM(x) FROM t", "SELECT AVG(x) FROM t"), 0.0);
  EXPECT_EQ(StructD("SELECT SUM(x) FROM t WHERE y = 1",
                    "SELECT SUM(x) FROM t WHERE y = 2"),
            0.0);
}

TEST(DistanceMeasureTest, SharedInformationDeclarations) {
  TokenDistance token;
  StructureDistance structure;
  EXPECT_FALSE(token.Shared().db_content);
  EXPECT_FALSE(token.Shared().domains);
  EXPECT_FALSE(structure.Shared().db_content);
  EXPECT_EQ(token.Name(), "token");
  EXPECT_EQ(structure.Name(), "structure");
}

}  // namespace
}  // namespace dpe::distance
