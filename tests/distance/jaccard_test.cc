#include "distance/jaccard.h"

#include <gtest/gtest.h>

namespace dpe::distance {
namespace {

using S = std::set<std::string>;

TEST(JaccardTest, IdenticalSetsDistanceZero) {
  S a{"x", "y"};
  EXPECT_EQ(JaccardDistance(a, a), 0.0);
}

TEST(JaccardTest, DisjointSetsDistanceOne) {
  EXPECT_EQ(JaccardDistance(S{"a"}, S{"b"}), 1.0);
}

TEST(JaccardTest, BothEmptyIsZero) {
  EXPECT_EQ(JaccardDistance(S{}, S{}), 0.0);
}

TEST(JaccardTest, OneEmptyIsOne) {
  EXPECT_EQ(JaccardDistance(S{"a"}, S{}), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // |{a,b} n {b,c}| = 1, |u| = 3 -> d = 2/3.
  EXPECT_DOUBLE_EQ(JaccardDistance(S{"a", "b"}, S{"b", "c"}), 2.0 / 3.0);
}

TEST(JaccardTest, SymmetricAndBounded) {
  S a{"1", "2", "3"}, b{"3", "4"};
  EXPECT_EQ(JaccardDistance(a, b), JaccardDistance(b, a));
  EXPECT_GE(JaccardDistance(a, b), 0.0);
  EXPECT_LE(JaccardDistance(a, b), 1.0);
}

TEST(JaccardTest, SimilarityComplement) {
  S a{"a", "b"}, b{"b", "c"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b) + JaccardDistance(a, b), 1.0);
}

TEST(JaccardTest, IntSets) {
  std::set<int> a{1, 2, 3, 4}, b{3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 1.0 - 2.0 / 6.0);
}

TEST(JaccardTest, TriangleInequalityOnSamples) {
  // Jaccard distance is a metric; spot-check the triangle inequality.
  std::vector<S> sets = {{"a", "b"}, {"b", "c"}, {"a", "c", "d"}, {}, {"e"}};
  for (const auto& x : sets) {
    for (const auto& y : sets) {
      for (const auto& z : sets) {
        EXPECT_LE(JaccardDistance(x, z),
                  JaccardDistance(x, y) + JaccardDistance(y, z) + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace dpe::distance
