#include "distance/access_area_distance.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::distance {
namespace {

class AccessAreaDistanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domains_.Set("r.a", {db::Value::Int(0), db::Value::Int(100)});
    domains_.Set("r.b", {db::Value::Int(0), db::Value::Int(100)});
    ctx_.domains = &domains_;
  }

  double D(const std::string& a, const std::string& b, double x = 0.5) {
    AccessAreaDistance::Options opt;
    opt.x = x;
    AccessAreaDistance measure(opt);
    return measure
        .Distance(sql::Parse(a).value(), sql::Parse(b).value(), ctx_)
        .value();
  }

  db::DomainRegistry domains_;
  MeasureContext ctx_;
};

TEST_F(AccessAreaDistanceTest, IdenticalAccessAreasGiveZero) {
  EXPECT_EQ(D("SELECT a FROM r WHERE b = 5", "SELECT a FROM r WHERE b = 5"), 0.0);
  // Different SELECT clause, same WHERE: SELECT does not influence areas.
  EXPECT_EQ(D("SELECT a FROM r WHERE b = 5", "SELECT b FROM r WHERE b = 5"), 0.0);
}

TEST_F(AccessAreaDistanceTest, OverlappingAreasGiveX) {
  // [0,50] vs [40,100] on the same attribute: delta = x.
  EXPECT_DOUBLE_EQ(D("SELECT a FROM r WHERE b <= 50",
                     "SELECT a FROM r WHERE b >= 40"),
                   0.5);
  EXPECT_DOUBLE_EQ(D("SELECT a FROM r WHERE b <= 50",
                     "SELECT a FROM r WHERE b >= 40", 0.25),
                   0.25);
}

TEST_F(AccessAreaDistanceTest, DisjointAreasGiveOne) {
  EXPECT_DOUBLE_EQ(
      D("SELECT a FROM r WHERE b < 10", "SELECT a FROM r WHERE b > 90"), 1.0);
}

TEST_F(AccessAreaDistanceTest, AttributeAccessedByOnlyOneQuery) {
  // Q1 accesses b, Q2 accesses a: Attr = {a, b}; both deltas are 1
  // (area vs empty) -> distance 1.
  EXPECT_DOUBLE_EQ(
      D("SELECT a FROM r WHERE b = 5", "SELECT b FROM r WHERE a = 5"), 1.0);
}

TEST_F(AccessAreaDistanceTest, MixedAttributesAverage) {
  // Shared attribute b equal (delta 0); a accessed only by Q2 (delta 1).
  // Average over {a, b} = 0.5.
  EXPECT_DOUBLE_EQ(D("SELECT a FROM r WHERE b = 5",
                     "SELECT b FROM r WHERE b = 5 AND a = 1"),
                   0.5);
}

TEST_F(AccessAreaDistanceTest, NoAccessedAttributesAnywhere) {
  EXPECT_EQ(D("SELECT a FROM r", "SELECT b FROM r"), 0.0);
}

TEST_F(AccessAreaDistanceTest, PointInsideRangeIsOverlap) {
  EXPECT_DOUBLE_EQ(D("SELECT a FROM r WHERE b = 20",
                     "SELECT a FROM r WHERE b BETWEEN 10 AND 30"),
                   0.5);
}

TEST_F(AccessAreaDistanceTest, RequiresDomains) {
  AccessAreaDistance measure;
  MeasureContext empty;
  auto q = sql::Parse("SELECT a FROM r WHERE b = 1").value();
  EXPECT_FALSE(measure.Distance(q, q, empty).ok());
}

TEST_F(AccessAreaDistanceTest, SharedInformationDeclaresDomains) {
  AccessAreaDistance measure;
  EXPECT_TRUE(measure.Shared().domains);
  EXPECT_FALSE(measure.Shared().db_content);
}

// Parameterized sweep over the x parameter (ablation A1d).
class XParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(XParamSweep, OverlapDeltaEqualsX) {
  db::DomainRegistry domains;
  domains.Set("r.b", {db::Value::Int(0), db::Value::Int(100)});
  MeasureContext ctx;
  ctx.domains = &domains;
  AccessAreaDistance::Options opt;
  opt.x = GetParam();
  AccessAreaDistance measure(opt);
  auto q1 = sql::Parse("SELECT a FROM r WHERE b <= 50").value();
  auto q2 = sql::Parse("SELECT a FROM r WHERE b >= 40").value();
  EXPECT_DOUBLE_EQ(measure.Distance(q1, q2, ctx).value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(XValues, XParamSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace dpe::distance
