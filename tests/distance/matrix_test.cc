// Regression tests for the bounds-checked DistanceMatrix accessors: at/set
// used to silently read/write out of bounds for any caller other than
// MaxAbsDifference.

#include "distance/matrix.h"

#include <gtest/gtest.h>

namespace dpe::distance {
namespace {

TEST(DistanceMatrixTest, CheckedAtReadsInRange) {
  DistanceMatrix m(3);
  m.set(0, 2, 0.25);
  auto d = m.At(0, 2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0.25);
  auto mirrored = m.At(2, 0);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(*mirrored, 0.25);
}

TEST(DistanceMatrixTest, CheckedAtRejectsOutOfRange) {
  DistanceMatrix m(3);
  EXPECT_EQ(m.At(3, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.At(0, 3).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.At(100, 100).status().code(), StatusCode::kOutOfRange);
}

TEST(DistanceMatrixTest, CheckedSetWritesSymmetrically) {
  DistanceMatrix m(4);
  ASSERT_TRUE(m.Set(1, 3, 0.5).ok());
  EXPECT_EQ(m.at(1, 3), 0.5);
  EXPECT_EQ(m.at(3, 1), 0.5);
}

TEST(DistanceMatrixTest, CheckedSetRejectsOutOfRange) {
  DistanceMatrix m(2);
  EXPECT_EQ(m.Set(2, 0, 0.1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.Set(0, 2, 0.1).code(), StatusCode::kOutOfRange);
  // The matrix must be untouched by the failed write.
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_EQ(m.at(i, j), 0.0);
  }
}

TEST(DistanceMatrixTest, EmptyMatrixRejectsEverything) {
  DistanceMatrix m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.At(0, 0).ok());
  EXPECT_FALSE(m.Set(0, 0, 1.0).ok());
}

TEST(DistanceMatrixTest, MaxAbsDifferenceSizeMismatch) {
  DistanceMatrix a(2), b(3);
  EXPECT_EQ(DistanceMatrix::MaxAbsDifference(a, b).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpe::distance
