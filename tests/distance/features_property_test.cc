// Property test for the feature-precompute pipeline: for every built-in
// measure, the featurized hot path (MeasureContext.features set) returns
// the exact same distance — bit-identical, not approximately equal — as the
// un-featurized reference path, over every pair of a generated query log.

#include "distance/features.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <vector>

#include "distance/access_area_distance.h"
#include "distance/jaccard.h"
#include "distance/levenshtein_distance.h"
#include "distance/result_distance.h"
#include "distance/structure_distance.h"
#include "distance/token_distance.h"
#include "tests/scenario_test_util.h"

namespace dpe::distance {
namespace {

std::vector<std::unique_ptr<QueryDistanceMeasure>> AllMeasures() {
  std::vector<std::unique_ptr<QueryDistanceMeasure>> measures;
  measures.push_back(std::make_unique<TokenDistance>());
  measures.push_back(std::make_unique<StructureDistance>());
  measures.push_back(std::make_unique<ResultDistance>());
  measures.push_back(std::make_unique<AccessAreaDistance>(
      AccessAreaDistance::CanonicalDpeOptions()));
  measures.push_back(std::make_unique<LevenshteinDistance>(
      LevenshteinDistance::Granularity::kTokenSequence));
  measures.push_back(std::make_unique<LevenshteinDistance>(
      LevenshteinDistance::Granularity::kCharacter));
  return measures;
}

TEST(FeatureCacheTest, ComputesOneEntryPerQuery) {
  workload::Scenario s = testutil::Shop(7, 12);
  auto cache = FeatureCache::Compute(s.log).value();
  EXPECT_EQ(cache.size(), s.log.size());
  for (const sql::SelectQuery& q : s.log) {
    const QueryFeatures* f = cache.Find(q);
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->sql.empty());
    EXPECT_FALSE(f->token_seq.empty());
    // token_ids is the sorted unique projection of token_seq.
    std::vector<uint32_t> expect(f->token_seq.begin(), f->token_seq.end());
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    EXPECT_TRUE(std::equal(f->token_ids.begin(), f->token_ids.end(),
                           expect.begin(), expect.end()));
    EXPECT_TRUE(std::is_sorted(f->structure_ids.begin(),
                               f->structure_ids.end()));
  }
}

// The SoA contract: every span of every query slices the cache's single
// flat arena, and the per-query stripes are packed in log order — the
// layout the blocked builder's tiles rely on for locality.
TEST(FeatureCacheTest, SpansSliceOneArenaInLogOrder) {
  workload::Scenario s = testutil::Shop(11, 9);
  auto cache = FeatureCache::Compute(s.log).value();
  const std::vector<uint32_t>& arena = cache.arena();
  const uint32_t* base = arena.data();
  const uint32_t* cursor = base;
  for (const sql::SelectQuery& q : s.log) {
    const QueryFeatures* f = cache.Find(q);
    ASSERT_NE(f, nullptr);
    // Per-query stripe: [token_seq][token_ids][structure_ids], contiguous.
    EXPECT_EQ(f->token_seq.data(), cursor);
    EXPECT_EQ(f->token_ids.data(), f->token_seq.data() + f->token_seq.size());
    EXPECT_EQ(f->structure_ids.data(),
              f->token_ids.data() + f->token_ids.size());
    cursor = f->structure_ids.data() + f->structure_ids.size();
    EXPECT_GE(f->token_seq.data(), base);
    EXPECT_LE(cursor, base + arena.size());
  }
  EXPECT_EQ(cursor, base + arena.size());
}

TEST(FeatureCacheTest, FindIsIdentityBasedSoCopiesFallBack) {
  workload::Scenario s = testutil::Shop(7, 4);
  auto cache = FeatureCache::Compute(s.log).value();
  sql::SelectQuery copy = s.log[0];
  EXPECT_EQ(cache.Find(copy), nullptr);
  EXPECT_NE(cache.Find(s.log[0]), nullptr);
}

// The tentpole property: featurized == un-featurized, bit for bit, for all
// six measures over all pairs. Separate measure instances per path so the
// featurized one cannot reuse reference-path internal caches.
TEST(FeaturizedDistanceProperty, BitIdenticalToReferenceForAllMeasures) {
  workload::Scenario s = testutil::Shop(42, 30);
  distance::MeasureContext reference_ctx = s.Context();
  auto cache = FeatureCache::Compute(s.log).value();
  distance::MeasureContext featurized_ctx = reference_ctx;
  featurized_ctx.features = &cache;

  auto reference_measures = AllMeasures();
  auto featurized_measures = AllMeasures();
  for (size_t mi = 0; mi < reference_measures.size(); ++mi) {
    const QueryDistanceMeasure& reference = *reference_measures[mi];
    const QueryDistanceMeasure& featurized = *featurized_measures[mi];
    ASSERT_TRUE(reference.Prepare(s.log, reference_ctx).ok()) << reference.Name();
    ASSERT_TRUE(featurized.Prepare(s.log, featurized_ctx).ok()) << featurized.Name();
    for (size_t i = 0; i < s.log.size(); ++i) {
      for (size_t j = i + 1; j < s.log.size(); ++j) {
        auto expect = reference.Distance(s.log[i], s.log[j], reference_ctx);
        auto got = featurized.Distance(s.log[i], s.log[j], featurized_ctx);
        ASSERT_TRUE(expect.ok()) << reference.Name();
        ASSERT_TRUE(got.ok()) << featurized.Name();
        // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the claim is bit-identity.
        EXPECT_EQ(*got, *expect)
            << reference.Name() << " pair (" << i << ", " << j << ")";
      }
    }
  }
}

// A query outside the cache falls back to extraction on the fly and still
// matches the reference path exactly.
TEST(FeaturizedDistanceProperty, UncachedQueryFallsBackBitIdentically) {
  workload::Scenario s = testutil::Shop(3, 6);
  std::vector<sql::SelectQuery> cached_log(s.log.begin(), s.log.end() - 1);
  auto cache = FeatureCache::Compute(cached_log).value();
  distance::MeasureContext ctx = s.Context();
  distance::MeasureContext featurized_ctx = ctx;
  featurized_ctx.features = &cache;

  TokenDistance token;
  const sql::SelectQuery& outside = s.log.back();
  auto expect = token.Distance(cached_log[0], outside, ctx);
  auto got = token.Distance(cached_log[0], outside, featurized_ctx);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *expect);
}

// Merge-intersection kernel vs std::set_intersection on random sorted
// unique vectors.
TEST(SortedIntersectionTest, MatchesSetIntersectionOnRandomInputs) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 200; ++round) {
    std::set<uint32_t> sa, sb;
    std::uniform_int_distribution<uint32_t> value(0, 60);
    std::uniform_int_distribution<size_t> len(0, 40);
    const size_t na = len(rng), nb = len(rng);
    while (sa.size() < na) sa.insert(value(rng));
    while (sb.size() < nb) sb.insert(value(rng));
    std::vector<uint32_t> a(sa.begin(), sa.end()), b(sb.begin(), sb.end());
    std::vector<uint32_t> expect;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));
    EXPECT_EQ(SortedIntersectionCount(a, b), expect.size());
    EXPECT_EQ(SortedIntersectionCount(b, a), expect.size());
    // And the distance agrees with the std::set reference implementation.
    std::set<uint32_t> set_a(a.begin(), a.end()), set_b(b.begin(), b.end());
    EXPECT_EQ(JaccardDistanceSorted(a, b), JaccardDistance(set_a, set_b));
  }
}

TEST(SortedIntersectionTest, EmptyEdgeCases) {
  std::vector<uint32_t> empty, some{1, 2, 3};
  EXPECT_EQ(SortedIntersectionCount(empty, empty), 0u);
  EXPECT_EQ(SortedIntersectionCount(empty, some), 0u);
  EXPECT_EQ(JaccardDistanceSorted(empty, empty), 0.0);
  EXPECT_EQ(JaccardDistanceSorted(empty, some), 1.0);
  EXPECT_EQ(JaccardDistanceSorted(some, some), 0.0);
}

}  // namespace
}  // namespace dpe::distance
