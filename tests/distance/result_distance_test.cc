#include "distance/result_distance.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::distance {
namespace {

class ResultDistanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Table t("t", db::TableSchema({{"id", db::ColumnType::kInt},
                                      {"grp", db::ColumnType::kString}}));
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE(t.Append({db::Value::Int(i),
                            db::Value::String(i <= 5 ? "low" : "high")})
                      .ok());
    }
    ASSERT_TRUE(db_.CreateTable(std::move(t)).ok());
    ctx_.database = &db_;
  }

  double D(const std::string& a, const std::string& b) {
    return measure_
        .Distance(sql::Parse(a).value(), sql::Parse(b).value(), ctx_)
        .value();
  }

  db::Database db_;
  MeasureContext ctx_;
  ResultDistance measure_;
};

TEST_F(ResultDistanceTest, EquivalentQueriesHaveDistanceZero) {
  // Different syntax, same result set.
  EXPECT_EQ(D("SELECT id FROM t WHERE id <= 5",
              "SELECT id FROM t WHERE grp = 'low'"),
            0.0);
}

TEST_F(ResultDistanceTest, DisjointResultsHaveDistanceOne) {
  EXPECT_EQ(D("SELECT id FROM t WHERE id <= 5", "SELECT id FROM t WHERE id > 5"),
            1.0);
}

TEST_F(ResultDistanceTest, OverlapCounts) {
  // {1..6} vs {4..10}: intersection {4,5,6} = 3, union 10 -> d = 0.7.
  EXPECT_DOUBLE_EQ(
      D("SELECT id FROM t WHERE id <= 6", "SELECT id FROM t WHERE id >= 4"),
      0.7);
}

TEST_F(ResultDistanceTest, SetSemanticsIgnoreDuplicatesAndOrder) {
  EXPECT_EQ(D("SELECT grp FROM t", "SELECT DISTINCT grp FROM t"), 0.0);
  EXPECT_EQ(D("SELECT id FROM t ORDER BY id DESC", "SELECT id FROM t"), 0.0);
}

TEST_F(ResultDistanceTest, DifferentArityTuplesAreDisjoint) {
  EXPECT_EQ(D("SELECT id FROM t WHERE id = 1", "SELECT id, grp FROM t WHERE id = 1"),
            1.0);
}

TEST_F(ResultDistanceTest, RequiresDatabase) {
  ResultDistance measure;
  MeasureContext empty;
  auto q = sql::Parse("SELECT id FROM t").value();
  EXPECT_FALSE(measure.Distance(q, q, empty).ok());
}

TEST_F(ResultDistanceTest, ExecutionErrorsPropagate) {
  auto q1 = sql::Parse("SELECT id FROM t").value();
  auto q2 = sql::Parse("SELECT id FROM missing").value();
  EXPECT_FALSE(measure_.Distance(q1, q2, ctx_).ok());
}

TEST_F(ResultDistanceTest, SharedInformationDeclaresDbContent) {
  EXPECT_TRUE(measure_.Shared().db_content);
}

TEST_F(ResultDistanceTest, CachedExecutionIsConsistent) {
  // Repeated distance computations (cache hits) agree with fresh ones.
  double d1 = D("SELECT id FROM t WHERE id <= 6", "SELECT id FROM t WHERE id >= 4");
  double d2 = D("SELECT id FROM t WHERE id <= 6", "SELECT id FROM t WHERE id >= 4");
  EXPECT_EQ(d1, d2);
  ResultDistance fresh;
  EXPECT_EQ(fresh
                .Distance(sql::Parse("SELECT id FROM t WHERE id <= 6").value(),
                          sql::Parse("SELECT id FROM t WHERE id >= 4").value(),
                          ctx_)
                .value(),
            d1);
}

}  // namespace
}  // namespace dpe::distance
