#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dpe::engine {
namespace {

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(pool, 0, touched.size(), 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ChunkBoundariesRespectGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(pool, 0, 103, 10, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  size_t total = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_LE(end - begin, 10u);
    EXPECT_EQ(begin % 10, 0u);  // static tiling: deterministic boundaries
    total += end - begin;
  }
  EXPECT_EQ(total, 103u);
}

TEST(ThreadPoolTest, StatsCountExecutedTasksAndQueueDepth) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.GetStats().tasks_executed, 0u);
  for (int i = 0; i < 25; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  const ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_executed, 25u);
  EXPECT_GE(stats.peak_queue_depth, 1u);
  EXPECT_EQ(pool.queue_depth(), 0u);  // drained
}

TEST(ThreadPoolTest, BusyTimeAccumulatesAcrossTasks) {
  ThreadPool pool(1);
  pool.Submit([] {
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 2000000; ++i) sink += i;
  });
  pool.Wait();
  EXPECT_GT(pool.GetStats().busy_ns, 0u);
}

TEST(ParallelForTest, EmptyRangeRecordsZeroTasks) {
  ThreadPool pool(2);
  ParallelFor(pool, 5, 5, 1, [](size_t, size_t) {});
  const ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.peak_queue_depth, 0u);
  EXPECT_EQ(stats.busy_ns, 0u);
}

TEST(ParallelForTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(pool, 0, 100, 9, [&](size_t begin, size_t end) {
      size_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

}  // namespace
}  // namespace dpe::engine
