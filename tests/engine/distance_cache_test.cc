// DistanceCache: LRU eviction under a byte budget, atomic stats (reset on
// Clear), export/restore recency round-trip, and concurrent-lookup safety.

#include "engine/distance_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dpe::engine {
namespace {

DistanceCache::Options Budget(size_t entries) {
  return DistanceCache::Options{entries * DistanceCache::kEntryBytes};
}

TEST(DistanceCacheTest, LookupIsUnorderedInPair) {
  DistanceCache cache;
  cache.Insert("token", 3, 7, 0.5);
  auto a = cache.Lookup("token", 3, 7);
  auto b = cache.Lookup("token", 7, 3);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 0.5);
  EXPECT_EQ(*b, 0.5);
  EXPECT_FALSE(cache.Lookup("structure", 3, 7).has_value());
}

TEST(DistanceCacheTest, StatsCountHitsAndMissesAndResetOnClear) {
  DistanceCache cache;
  cache.Insert("token", 0, 1, 0.1);
  cache.Lookup("token", 0, 1);  // hit
  cache.Lookup("token", 0, 2);  // miss
  cache.Lookup("other", 0, 1);  // miss (measure never seen)
  DistanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);

  cache.Clear();
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DistanceCacheTest, UnboundedByDefault) {
  DistanceCache cache;
  for (uint32_t k = 0; k < 1000; ++k) cache.Insert("token", k, k + 1, 0.5);
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(DistanceCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  DistanceCache cache(Budget(4));
  for (uint32_t k = 0; k < 6; ++k) cache.Insert("token", k, k + 1, k * 0.1);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_LE(cache.bytes_used(), cache.max_bytes());
  EXPECT_EQ(cache.stats().evictions, 2u);
  // The two oldest pairs are gone, the four newest survive.
  EXPECT_FALSE(cache.Lookup("token", 0, 1).has_value());
  EXPECT_FALSE(cache.Lookup("token", 1, 2).has_value());
  EXPECT_TRUE(cache.Lookup("token", 2, 3).has_value());
  EXPECT_TRUE(cache.Lookup("token", 5, 6).has_value());
}

TEST(DistanceCacheTest, LookupPromotesAgainstEviction) {
  DistanceCache cache(Budget(3));
  cache.Insert("token", 0, 1, 0.0);
  cache.Insert("token", 1, 2, 0.1);
  cache.Insert("token", 2, 3, 0.2);
  // Touch the oldest pair; the *untouched* oldest should be evicted next.
  ASSERT_TRUE(cache.Lookup("token", 0, 1).has_value());
  cache.Insert("token", 3, 4, 0.3);
  EXPECT_TRUE(cache.Lookup("token", 0, 1).has_value());   // promoted: kept
  EXPECT_FALSE(cache.Lookup("token", 1, 2).has_value());  // evicted
}

TEST(DistanceCacheTest, LruIsGlobalAcrossMeasures) {
  DistanceCache cache(Budget(2));
  cache.Insert("token", 0, 1, 0.0);
  cache.Insert("structure", 0, 1, 0.5);
  cache.Insert("token", 1, 2, 0.1);  // evicts the token (0,1) pair
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("token", 0, 1).has_value());
  EXPECT_TRUE(cache.Lookup("structure", 0, 1).has_value());
  EXPECT_TRUE(cache.Lookup("token", 1, 2).has_value());
}

TEST(DistanceCacheTest, ReinsertUpdatesValueAndRecency) {
  DistanceCache cache(Budget(2));
  cache.Insert("token", 0, 1, 0.0);
  cache.Insert("token", 1, 2, 0.1);
  cache.Insert("token", 0, 1, 0.0);  // re-insert: promote, no growth
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert("token", 2, 3, 0.2);  // evicts (1,2), not the promoted (0,1)
  EXPECT_TRUE(cache.Lookup("token", 0, 1).has_value());
  EXPECT_FALSE(cache.Lookup("token", 1, 2).has_value());
}

TEST(DistanceCacheTest, ExportRestoreRoundTripPreservesRecency) {
  // Budgeted source cache: lookups promote only when eviction is possible
  // (the unbounded cache skips LRU bookkeeping as a fast path).
  DistanceCache cache(Budget(8));
  cache.Insert("token", 0, 1, 0.0);
  cache.Insert("structure", 0, 1, 0.5);
  cache.Insert("token", 1, 2, 0.1);
  ASSERT_TRUE(cache.Lookup("token", 0, 1).has_value());  // promote (0,1)

  std::vector<store::CacheEntry> exported = cache.Export();
  ASSERT_EQ(exported.size(), 3u);
  // Coldest first: structure (0,1), token (1,2), token (0,1).
  EXPECT_EQ(exported[0].measure, "structure");
  EXPECT_EQ(exported[2].measure, "token");
  EXPECT_EQ(exported[2].i, 0u);
  EXPECT_EQ(exported[2].j, 1u);

  // Restoring into a budget of 2 must keep the two *hottest* entries.
  DistanceCache restored(Budget(2));
  restored.Restore(exported);
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_FALSE(restored.Lookup("structure", 0, 1).has_value());
  EXPECT_TRUE(restored.Lookup("token", 1, 2).has_value());
  EXPECT_TRUE(restored.Lookup("token", 0, 1).has_value());
  // Restore itself does not disturb the counters (the three lookups above
  // are the only events).
  EXPECT_EQ(restored.stats().hits, 2u);
  EXPECT_EQ(restored.stats().misses, 1u);
}

TEST(DistanceCacheTest, TinyBudgetNeverExceedsItself) {
  DistanceCache cache(DistanceCache::Options{1});  // less than one entry
  cache.Insert("token", 0, 1, 0.5);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_LE(cache.bytes_used(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(DistanceCacheTest, ConcurrentLookupsAndInsertsKeepConsistentCounters) {
  DistanceCache cache(Budget(64));
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 2000;
  std::atomic<bool> torn_value{false};  // gtest asserts are not thread-safe
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &torn_value, t] {
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const uint32_t i = static_cast<uint32_t>((t * 7 + op) % 40);
        const uint32_t j = i + 1 + static_cast<uint32_t>(op % 3);
        if (op % 2 == 0) {
          cache.Insert("token", i, j, 0.25);
        } else {
          auto d = cache.Lookup("token", i, j);
          // Values are deterministic: a hit can only ever see 0.25.
          if (d.has_value() && *d != 0.25) torn_value = true;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(torn_value);

  DistanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread / 2);
  EXPECT_LE(cache.bytes_used(), cache.max_bytes());
}

}  // namespace
}  // namespace dpe::engine
