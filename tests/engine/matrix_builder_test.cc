// The tentpole guarantee: the blocked parallel matrix build is bit-identical
// to the serial DistanceMatrix::Compute reference, across log sizes, thread
// counts, block sizes and measures.

#include "engine/matrix_builder.h"

#include <gtest/gtest.h>

#include "distance/access_area_distance.h"
#include "distance/result_distance.h"
#include "distance/token_distance.h"
#include "engine/measure_registry.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

workload::Scenario Shop(uint64_t seed, size_t log_size) {
  workload::ScenarioOptions opt;
  opt.seed = seed;
  opt.rows_per_relation = 40;
  opt.log_size = log_size;
  auto s = workload::MakeShopScenario(opt);
  EXPECT_TRUE(s.ok()) << s.status();
  return std::move(s).value();
}

/// EXPECT bit-identical equality cell by cell (== on doubles, no tolerance).
void ExpectBitIdentical(const distance::DistanceMatrix& a,
                        const distance::DistanceMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.at(i, j), b.at(i, j)) << "cell (" << i << ", " << j << ")";
    }
  }
}

TEST(MatrixBuilderTest, ParallelEqualsSerialAcrossSizesAndThreads) {
  MeasureRegistry registry = MeasureRegistry::WithBuiltins();
  for (size_t log_size : {1u, 2u, 17u, 64u, 90u}) {
    workload::Scenario s = Shop(7 + log_size, log_size);
    distance::MeasureContext context = s.Context();
    for (const char* name : {"token", "structure"}) {
      auto measure = registry.Create(name);
      ASSERT_TRUE(measure.ok());
      auto serial = distance::DistanceMatrix::Compute(s.log, **measure, context);
      ASSERT_TRUE(serial.ok()) << serial.status();
      for (size_t threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        MatrixBuilder builder(&pool, MatrixBuilderOptions{16});
        auto parallel = builder.Build(s.log, **measure, context);
        ASSERT_TRUE(parallel.ok()) << parallel.status();
        ExpectBitIdentical(*serial, *parallel);
      }
    }
  }
}

TEST(MatrixBuilderTest, ParallelEqualsSerialForOddBlockSizes) {
  workload::Scenario s = Shop(3, 33);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, context);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  for (size_t block : {1u, 5u, 32u, 33u, 1000u}) {
    MatrixBuilder builder(&pool, MatrixBuilderOptions{block});
    auto parallel = builder.Build(s.log, token, context);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectBitIdentical(*serial, *parallel);
  }
}

TEST(MatrixBuilderTest, ParallelEqualsSerialForStatefulResultMeasure) {
  // The result measure memoizes tuple sets; Prepare() warms that cache
  // serially so the parallel pairwise phase is read-only.
  workload::Scenario s = Shop(11, 24);
  distance::MeasureContext context = s.Context();
  distance::ResultDistance serial_measure;
  auto serial =
      distance::DistanceMatrix::Compute(s.log, serial_measure, context);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ThreadPool pool(4);
  MatrixBuilder builder(&pool, MatrixBuilderOptions{8});
  distance::ResultDistance parallel_measure;
  auto parallel = builder.Build(s.log, parallel_measure, context);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectBitIdentical(*serial, *parallel);
}

TEST(MatrixBuilderTest, ParallelEqualsSerialForAccessArea) {
  workload::Scenario s = Shop(19, 30);
  distance::MeasureContext context = s.Context();
  distance::AccessAreaDistance measure;
  auto serial = distance::DistanceMatrix::Compute(s.log, measure, context);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ThreadPool pool(3);
  MatrixBuilder builder(&pool, MatrixBuilderOptions{7});
  auto parallel = builder.Build(s.log, measure, context);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectBitIdentical(*serial, *parallel);
}

TEST(MatrixBuilderTest, NullPoolRunsSerially) {
  workload::Scenario s = Shop(5, 12);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  MatrixBuilder builder(nullptr);
  auto serial = distance::DistanceMatrix::Compute(s.log, token, context);
  auto built = builder.Build(s.log, token, context);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(built.ok());
  ExpectBitIdentical(*serial, *built);
}

TEST(MatrixBuilderTest, PropagatesMeasureErrors) {
  // The result measure without a database must fail, not crash, under the
  // parallel build.
  workload::Scenario s = Shop(2, 10);
  distance::MeasureContext empty_context;
  distance::ResultDistance measure;
  ThreadPool pool(4);
  MatrixBuilder builder(&pool);
  auto built = builder.Build(s.log, measure, empty_context);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixBuilderTest, ComputePairsMatchesMatrixCells) {
  workload::Scenario s = Shop(23, 20);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, context);
  ASSERT_TRUE(serial.ok());

  std::vector<std::pair<size_t, size_t>> pairs = {
      {0, 1}, {3, 7}, {19, 2}, {5, 5}, {18, 19}};
  ThreadPool pool(4);
  MatrixBuilder builder(&pool, MatrixBuilderOptions{2});
  auto distances = builder.ComputePairs(s.log, pairs, token, context);
  ASSERT_TRUE(distances.ok()) << distances.status();
  ASSERT_EQ(distances->size(), pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ((*distances)[p], serial->at(pairs[p].first, pairs[p].second));
  }
}

TEST(MatrixBuilderTest, ComputePairsRejectsOutOfRangeIndices) {
  workload::Scenario s = Shop(29, 5);
  distance::TokenDistance token;
  MatrixBuilder builder(nullptr);
  auto distances =
      builder.ComputePairs(s.log, {{0, 99}}, token, s.Context());
  EXPECT_EQ(distances.status().code(), StatusCode::kOutOfRange);
}

TEST(MatrixBuilderTest, ZeroBlockIsInvalidArgumentNotDivisionByZero) {
  // block == 0 used to be clamped silently; it must now surface as a typed
  // error from every entry point (the tile-count computation divides by it).
  workload::Scenario s = Shop(41, 6);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  MatrixBuilder builder(nullptr, MatrixBuilderOptions{0});
  EXPECT_EQ(builder.Build(s.log, token, context).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.BuildTiles(s.log, token, context, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      builder.ComputePairs(s.log, {{0, 1}}, token, context).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(MatrixBuilderTest, EmptyAndSingletonLogsBuildEmptySchedules) {
  workload::Scenario s = Shop(43, 1);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  ThreadPool pool(2);
  for (size_t block : {1u, 64u}) {
    MatrixBuilder builder(&pool, MatrixBuilderOptions{block});

    auto empty = builder.Build({}, token, context);
    ASSERT_TRUE(empty.ok()) << empty.status();
    EXPECT_EQ(empty->size(), 0u);

    auto single = builder.Build(s.log, token, context);
    ASSERT_TRUE(single.ok()) << single.status();
    ASSERT_EQ(single->size(), 1u);
    EXPECT_EQ(single->at(0, 0), 0.0);
  }
}

TEST(MatrixBuilderTest, BuildTilesSubrangeFillsOnlyItsTiles) {
  workload::Scenario s = Shop(47, 12);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  MatrixBuilder builder(nullptr, MatrixBuilderOptions{4});
  auto full = builder.Build(s.log, token, context);
  ASSERT_TRUE(full.ok());

  // Tiles (block 4, n 12): (0,0) (0,1) (0,2) (1,1) (1,2) (2,2). The range
  // [1, 3) is tiles (0,1) and (0,2): rows 0..3 against columns 4..11.
  auto partial = builder.BuildTiles(s.log, token, context, 1, 3);
  ASSERT_TRUE(partial.ok()) << partial.status();
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = i + 1; j < 12; ++j) {
      const bool in_range = i < 4 && j >= 4;
      EXPECT_EQ(partial->at(i, j), in_range ? full->at(i, j) : 0.0)
          << "cell (" << i << ", " << j << ")";
    }
  }

  // A subrange past the schedule is a typed error.
  EXPECT_EQ(builder.BuildTiles(s.log, token, context, 2, 99).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(builder.BuildTiles(s.log, token, context, 5, 3).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dpe::engine
