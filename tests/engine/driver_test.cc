// The fault-tolerant shard driver (engine/driver.h): lease-file atomicity,
// heartbeat freshness, expiry + stealing, the worker loop, and the
// incrementally-merging coordinator — including the degraded modes (dead
// workers, wedged workers, corrupt exports, coordinator-only builds). Every
// merged matrix must be bit-identical to the direct single-process build.
// Real process deaths (die/_exit at injection points) are bench_multihost's
// territory; here workers are threads and death is simulated by acquiring
// a lease and never renewing it.

#include "engine/driver.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "engine/engine.h"
#include "engine/matrix_builder.h"
#include "engine/measure_registry.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectBitIdentical;
using testutil::Shop;

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("driver_test_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  std::unique_ptr<DirectoryLeaseBoard> OpenBoard(uint32_t shards, int ttl_ms,
                                                 const std::string& host) {
    DirectoryLeaseBoard::Options options;
    options.dir = dir_;
    options.matrix = "token";
    options.shard_count = shards;
    options.ttl_ms = ttl_ms;
    options.host = host;
    auto board = DirectoryLeaseBoard::Open(options);
    EXPECT_TRUE(board.ok()) << board.status();
    return std::move(board).value();
  }

  std::string dir_;
};

// -- Lease protocol ----------------------------------------------------------

TEST_F(DriverTest, OpenValidatesItsOptions) {
  DirectoryLeaseBoard::Options options;
  options.dir = dir_;
  options.matrix = "token";
  options.shard_count = 0;
  options.ttl_ms = 100;
  EXPECT_EQ(DirectoryLeaseBoard::Open(options).status().code(),
            StatusCode::kInvalidArgument);
  options.shard_count = 2;
  options.ttl_ms = 0;
  EXPECT_EQ(DirectoryLeaseBoard::Open(options).status().code(),
            StatusCode::kInvalidArgument);
  options.ttl_ms = 100;
  options.dir = dir_ + "/does-not-exist";
  EXPECT_EQ(DirectoryLeaseBoard::Open(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DriverTest, AcquireIsExclusiveAcrossBoards) {
  auto a = OpenBoard(2, 60000, "host-a");
  auto b = OpenBoard(2, 60000, "host-b");

  auto first = a->TryAcquire(0);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(*first);

  auto second = b->TryAcquire(0);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(*second) << "a fresh lease must not be acquirable twice";

  auto other = b->TryAcquire(1);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(*other) << "a different shard is independent";

  EXPECT_EQ(a->TryAcquire(2).status().code(), StatusCode::kInvalidArgument)
      << "shard index out of range";
}

TEST_F(DriverTest, ReleaseFreesTheLease) {
  auto a = OpenBoard(1, 60000, "host-a");
  auto b = OpenBoard(1, 60000, "host-b");
  ASSERT_TRUE(*a->TryAcquire(0));
  ASSERT_TRUE(a->Release(0).ok());
  EXPECT_TRUE(*b->TryAcquire(0)) << "released lease is immediately takeable";
  EXPECT_TRUE(b->Release(0).ok());
  EXPECT_TRUE(b->Release(0).ok()) << "double release is OK";
}

TEST_F(DriverTest, SnapshotShowsHolderIdentityAndRenewals) {
  auto a = OpenBoard(3, 60000, "host-a");
  ASSERT_TRUE(*a->TryAcquire(1));
  ASSERT_TRUE(a->Renew(1).ok());
  ASSERT_TRUE(a->Renew(1).ok());

  auto table = a->Snapshot();
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->size(), 3u);
  EXPECT_FALSE((*table)[0].held);
  EXPECT_TRUE((*table)[1].held);
  EXPECT_TRUE((*table)[1].fresh);
  EXPECT_EQ((*table)[1].holder_host, "host-a");
  EXPECT_EQ((*table)[1].holder_pid, static_cast<int64_t>(::getpid()));
  EXPECT_EQ((*table)[1].epoch, 1u);
  EXPECT_EQ((*table)[1].renewals, 2u);
  EXPECT_FALSE((*table)[2].held);
}

TEST_F(DriverTest, ReportProgressPublishesCellsThroughRenew) {
  auto a = OpenBoard(2, 60000, "host-a");
  ASSERT_TRUE(*a->TryAcquire(0));

  // Progress lands on the held record; the next renew's rewrite carries it
  // into the lease line, where any board's snapshot can read it back.
  a->ReportProgress(0, 123);
  ASSERT_TRUE(a->Renew(0).ok());

  auto b = OpenBoard(2, 60000, "host-b");
  auto table = b->Snapshot();
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)[0].cells, 123u);
  EXPECT_EQ((*table)[1].cells, 0u);

  // Progress on an unheld shard is informational noise: dropped, no error.
  a->ReportProgress(1, 999);
  auto after = a->Snapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE((*after)[1].held);
}

TEST_F(DriverTest, HeartbeatForwardsLiveProgressIntoTheLeaseLine) {
  auto holder = OpenBoard(1, 60000, "host-a");
  auto observer = OpenBoard(1, 60000, "host-b");
  ASSERT_TRUE(*holder->TryAcquire(0));

  std::atomic<uint64_t> progress{0};
  {
    LeaseHeartbeat heartbeat(holder.get(), 0, /*interval_ms=*/30, &progress);
    progress.store(4096, std::memory_order_relaxed);
    // Wait until a beat after the store has published the count.
    uint64_t seen = 0;
    for (int i = 0; i < 400; ++i) {
      auto table = observer->Snapshot();
      ASSERT_TRUE(table.ok());
      seen = (*table)[0].cells;
      if (seen == 4096u) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(seen, 4096u)
        << "the heartbeat must publish the builder's progress";
  }
}

TEST_F(DriverTest, RenewRequiresHoldingTheLease) {
  auto a = OpenBoard(1, 60000, "host-a");
  EXPECT_EQ(a->Renew(0).code(), StatusCode::kInvalidArgument);
}

TEST_F(DriverTest, ExpiredLeaseIsStolenWithABumpedEpoch) {
  auto dead = OpenBoard(1, 80, "host-dead");
  auto live = OpenBoard(1, 80, "host-live");
  ASSERT_TRUE(*dead->TryAcquire(0));

  // Fresh: not stealable.
  EXPECT_FALSE(*live->TryAcquire(0));

  // The holder never renews; past the TTL anyone may steal.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto stolen = live->TryAcquire(0);
  ASSERT_TRUE(stolen.ok()) << stolen.status();
  EXPECT_TRUE(*stolen);

  auto table = live->Snapshot();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)[0].holder_host, "host-live");
  EXPECT_EQ((*table)[0].epoch, 2u) << "a steal bumps the epoch";
}

TEST_F(DriverTest, ReclaimExpiredFreesWithoutTaking) {
  auto dead = OpenBoard(1, 80, "host-dead");
  auto coordinator = OpenBoard(1, 80, "host-coord");
  ASSERT_TRUE(*dead->TryAcquire(0));

  auto fresh = coordinator->ReclaimExpired(0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(*fresh) << "a fresh lease must not be reclaimed";

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto reclaimed = coordinator->ReclaimExpired(0);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_TRUE(*reclaimed);

  auto table = coordinator->Snapshot();
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE((*table)[0].held) << "reclaim unlinks, it does not take";

  auto again = coordinator->ReclaimExpired(0);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again) << "nothing left to reclaim";
}

TEST_F(DriverTest, HeartbeatKeepsALeaseFreshPastManyTtls) {
  auto holder = OpenBoard(1, 200, "host-a");
  auto rival = OpenBoard(1, 200, "host-b");
  ASSERT_TRUE(*holder->TryAcquire(0));
  {
    LeaseHeartbeat heartbeat(holder.get(), 0, /*interval_ms=*/40);
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    EXPECT_FALSE(*rival->TryAcquire(0))
        << "a heartbeating lease must never be stolen";
    EXPECT_GE(heartbeat.renewals(), 5u);
  }
  // Heartbeat stopped: the lease now ages out and becomes stealable.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(*rival->TryAcquire(0));
}

TEST_F(DriverTest, GarbledLeaseContentStillProtectsFreshness) {
  auto a = OpenBoard(1, 60000, "host-a");
  ASSERT_TRUE(*a->TryAcquire(0));
  {
    std::ofstream out(a->LeasePath(0), std::ios::trunc | std::ios::binary);
    out << "\x01garbage\xff not a lease line at all";
  }
  auto b = OpenBoard(1, 60000, "host-b");
  EXPECT_FALSE(*b->TryAcquire(0))
      << "freshness rides on mtime, not parseable content";
  auto table = b->Snapshot();
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)[0].held);
  EXPECT_TRUE((*table)[0].fresh);
  EXPECT_EQ((*table)[0].epoch, 0u) << "unknown holder, not an error";
}

// -- Worker loop + driver ----------------------------------------------------

struct BuildFixture {
  workload::Scenario scenario;
  distance::MeasureContext context;
  std::unique_ptr<distance::QueryDistanceMeasure> measure;
  distance::DistanceMatrix reference;

  static BuildFixture Make(size_t n) {
    BuildFixture f{Shop(61, n), {}, nullptr, {}};
    f.context = f.scenario.Context();
    auto measure = MeasureRegistry::WithBuiltins().Create("token");
    EXPECT_TRUE(measure.ok());
    f.measure = std::move(measure).value();
    MatrixBuilder builder(nullptr, MatrixBuilderOptions{4});
    auto reference = builder.Build(f.scenario.log, *f.measure, f.context);
    EXPECT_TRUE(reference.ok()) << reference.status();
    f.reference = std::move(reference).value();
    return f;
  }
};

TEST_F(DriverTest, SoloWorkerExportsEveryShard) {
  BuildFixture f = BuildFixture::Make(24);
  auto plan = PlanShards(f.scenario.log.size(), 4, 3);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto board = OpenBoard(3, 60000, "worker-1");

  WorkerOptions options;
  options.heartbeat_ms = 50;
  auto report = RunWorkerLoop("token", f.scenario.log, *f.measure, f.context,
                              *plan, *store, *board, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->computed, 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(store->HasShard("token", s, 3));
  }
  // No leases left behind.
  auto table = board->Snapshot();
  ASSERT_TRUE(table.ok());
  for (const LeaseInfo& lease : *table) EXPECT_FALSE(lease.held);

  // The exported set merges bit-identical to the direct build.
  ShardCoordinator coordinator;
  auto merged = coordinator.Merge(*store, "token", 3, f.scenario.log.size());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(*merged, f.reference);
}

TEST_F(DriverTest, CoordinatorOnlyDriveCompletesWithZeroWorkers) {
  BuildFixture f = BuildFixture::Make(24);
  auto plan = PlanShards(f.scenario.log.size(), 4, 3);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto board = OpenBoard(3, 60000, "coordinator");

  DriverOptions options;
  options.claim_grace_ms = 0;  // nobody is coming — don't wait for them
  ShardDriver driver(options);
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *board);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->self_finished, 3u);
  EXPECT_EQ(report->merged_from_workers, 0u);
  ExpectBitIdentical(report->matrix, f.reference);
}

TEST_F(DriverTest, DriveMergesLiveWorkersIncrementally) {
  BuildFixture f = BuildFixture::Make(32);
  auto plan = PlanShards(f.scenario.log.size(), 4, 4);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto worker_store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(worker_store.ok());
  auto driver_board = OpenBoard(4, 60000, "coordinator");

  // Two worker threads with their own boards (separate processes in real
  // deployments — the directory is the shared medium either way).
  auto board_1 = OpenBoard(4, 60000, "worker-1");
  auto board_2 = OpenBoard(4, 60000, "worker-2");
  std::thread worker_1([&] {
    WorkerOptions options;
    options.heartbeat_ms = 50;
    auto report = RunWorkerLoop("token", f.scenario.log, *f.measure,
                                f.context, *plan, *worker_store, *board_1,
                                options);
    EXPECT_TRUE(report.ok()) << report.status();
  });
  std::thread worker_2([&] {
    WorkerOptions options;
    options.heartbeat_ms = 50;
    auto report = RunWorkerLoop("token", f.scenario.log, *f.measure,
                                f.context, *plan, *worker_store, *board_2,
                                options);
    EXPECT_TRUE(report.ok()) << report.status();
  });

  DriverOptions options;
  options.self_finish = true;  // permitted, but workers should beat it
  ShardDriver driver(options);
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *driver_board);
  worker_1.join();
  worker_2.join();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->merged_from_workers + report->self_finished, 4u);
  ExpectBitIdentical(report->matrix, f.reference);
}

TEST_F(DriverTest, DeadWorkersLeaseIsReclaimedAndRangeRedone) {
  BuildFixture f = BuildFixture::Make(24);
  auto plan = PlanShards(f.scenario.log.size(), 4, 3);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());

  // A "worker" that acquired shard 1 and died: lease exists, no renewals,
  // no shard file ever lands.
  const int ttl_ms = 300;
  auto dead = OpenBoard(3, ttl_ms, "host-dead");
  ASSERT_TRUE(*dead->TryAcquire(1));

  auto board = OpenBoard(3, ttl_ms, "coordinator");
  DriverOptions options;
  options.claim_grace_ms = 0;
  ShardDriver driver(options);
  const auto started = std::chrono::steady_clock::now();
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *board);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->lease_expiries, 1u);
  EXPECT_GE(report->reassignments, 1u);
  EXPECT_EQ(report->self_finished, 3u);
  ExpectBitIdentical(report->matrix, f.reference);

  // The latency bound: the dead worker stalls the build at most one TTL
  // plus one poll-backoff cap (2000ms default) — far under the stall
  // watchdog. Generous envelope to stay unflaky under load.
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(elapsed, std::chrono::milliseconds(ttl_ms + 2000 + 8000));
}

TEST_F(DriverTest, WedgedWorkerIsStolenFromAndHarmlessOnResume) {
  BuildFixture f = BuildFixture::Make(24);
  auto plan = PlanShards(f.scenario.log.size(), 4, 2);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto worker_store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(worker_store.ok());

  const int ttl_ms = 250;
  auto worker_board = OpenBoard(2, ttl_ms, "host-wedgy");
  auto driver_board = OpenBoard(2, ttl_ms, "coordinator");

  // The worker wedges right after its first acquire, BEFORE its heartbeat
  // starts — the wedge-without-heartbeat mode. The cap lets it resume
  // later, by which time its range was stolen and finished; the resumed
  // worker must finish cleanly (idempotent exports) without corrupting
  // anything.
  common::FaultInjector faults;
  ASSERT_TRUE(faults.Arm("worker.acquired=wedge:1200"));

  std::thread worker([&] {
    WorkerOptions options;
    options.heartbeat_ms = 50;
    options.faults = &faults;
    auto report = RunWorkerLoop("token", f.scenario.log, *f.measure,
                                f.context, *plan, *worker_store,
                                *worker_board, options);
    EXPECT_TRUE(report.ok()) << report.status();
  });

  DriverOptions options;
  ShardDriver driver(options);
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *driver_board);
  worker.join();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->lease_expiries, 1u)
      << "the wedged worker's unrenewed lease must expire";
  ExpectBitIdentical(report->matrix, f.reference);
}

TEST_F(DriverTest, CorruptExportIsDiscardedAndRecomputed) {
  BuildFixture f = BuildFixture::Make(24);
  auto plan = PlanShards(f.scenario.log.size(), 4, 3);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());

  // A garbage file sits where shard 1's export should be.
  {
    std::ofstream out(dir_ + "/shard-token-1of3.dpe", std::ios::binary);
    out << "this is not a DPEH frame";
  }
  ASSERT_TRUE(store->HasShard("token", 1, 3));

  auto board = OpenBoard(3, 60000, "coordinator");
  DriverOptions options;
  options.claim_grace_ms = 0;
  ShardDriver driver(options);
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *board);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->discards, 1u);
  ExpectBitIdentical(report->matrix, f.reference);
}

TEST_F(DriverTest, ForeignManifestIsDiscardedNotMerged) {
  BuildFixture f = BuildFixture::Make(24);
  auto plan = PlanShards(f.scenario.log.size(), 4, 2);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());

  // A well-formed shard file whose manifest disagrees with the derived
  // plan (wrong tile split — e.g. produced under a different block size).
  store::ShardManifest foreign;
  foreign.matrix = "token";
  foreign.shard_index = 0;
  foreign.shard_count = 2;
  foreign.n = f.scenario.log.size();
  foreign.block = 4;
  foreign.tile_begin = 0;
  foreign.tile_end = plan->ranges[0].end == 0 ? 1 : plan->ranges[0].end - 1;
  auto count = store::ShardCellCount(foreign);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(
      store->WriteShardCells(foreign, std::vector<double>(*count, 1.0)).ok());

  auto board = OpenBoard(2, 60000, "coordinator");
  DriverOptions options;
  options.claim_grace_ms = 0;
  ShardDriver driver(options);
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *board);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->discards, 1u);
  ExpectBitIdentical(report->matrix, f.reference);
}

TEST_F(DriverTest, StallWatchdogFailsInsteadOfHangingForever) {
  BuildFixture f = BuildFixture::Make(12);
  auto plan = PlanShards(f.scenario.log.size(), 4, 2);
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto board = OpenBoard(2, 60000, "coordinator");

  // self_finish off and no workers: nothing can ever land.
  DriverOptions options;
  options.self_finish = false;
  options.stall_timeout_ms = 400;
  ShardDriver driver(options);
  auto report = driver.Drive(*store, "token", f.scenario.log, *f.measure,
                             f.context, *plan, *board);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kExecutionError);
}

// -- Engine facade -----------------------------------------------------------

TEST_F(DriverTest, EngineDriveShardsMatchesBuildMatrixAndWarmsCache) {
  workload::Scenario s = Shop(61, 24);
  EngineOptions eopts;
  eopts.threads = 2;
  eopts.block = 4;
  Engine reference_engine(s.Context(), eopts);
  reference_engine.SetLog(s.log);
  auto reference = reference_engine.BuildMatrix("token");
  ASSERT_TRUE(reference.ok()) << reference.status();

  Engine e(s.Context(), eopts);
  e.SetLog(s.log);
  MultiHostOptions options;
  options.claim_grace_ms = 0;  // no workers in this test
  auto report = e.DriveShards("token", 3, dir_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ExpectBitIdentical(report->matrix, *reference);

  // The drive's pairs warmed the cache: a subsequent build computes 0 cells.
  auto again = e.BuildMatrix("token");
  ASSERT_TRUE(again.ok());
  ExpectBitIdentical(*again, *reference);
  EXPECT_EQ(e.last_build_report().cells_computed, 0u);

  // After the drive, /stats carries no lease table.
  EXPECT_EQ(e.Stats().ToJson().find("\"leases\""), std::string::npos);
}

TEST_F(DriverTest, StatsExposesTheLeaseTableWhileADriveIsActive) {
  workload::Scenario s = Shop(61, 16);
  EngineOptions eopts;
  eopts.threads = 2;
  eopts.block = 4;
  Engine e(s.Context(), eopts);
  e.SetLog(s.log);

  // Pin shard 0 with an external fresh lease so the drive must wait for
  // it: while it waits, Stats() must render the live lease table.
  auto external = OpenBoard(1, 60000, "host-external");
  ASSERT_TRUE(*external->TryAcquire(0));

  std::thread driver_thread([&] {
    MultiHostOptions options;
    options.self_finish = false;  // wait for "the worker" (us)
    options.stall_timeout_ms = 20000;
    auto report = e.DriveShards("token", 1, dir_, options);
    EXPECT_TRUE(report.ok()) << report.status();
  });

  // Poll until the drive is registered and the table shows the holder.
  std::string json;
  for (int i = 0; i < 400; ++i) {
    json = e.Stats().ToJson();
    if (json.find("host-external") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(json.find("\"drive_matrix\": \"token\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"leases\""), std::string::npos);
  EXPECT_NE(json.find("host-external"), std::string::npos);
  EXPECT_NE(json.find("\"renewals\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos)
      << "the lease table must carry per-worker progress";

  // Play the worker: export shard 0 and release — the drive completes.
  Engine worker(s.Context(), eopts);
  worker.SetLog(s.log);
  auto plan = worker.PlanShards(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(worker.RunShard("token", *plan, 0, dir_).ok());
  ASSERT_TRUE(external->Release(0).ok());
  driver_thread.join();
}

}  // namespace
}  // namespace dpe::engine
