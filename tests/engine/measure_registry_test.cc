#include "engine/measure_registry.h"

#include <gtest/gtest.h>

#include "distance/token_distance.h"

namespace dpe::engine {
namespace {

TEST(MeasureRegistryTest, BuiltinsContainEveryMeasure) {
  MeasureRegistry r = MeasureRegistry::WithBuiltins();
  const std::vector<std::string> expected = {
      "access-area",       "levenshtein-char", "levenshtein-token",
      "result",            "structure",        "token"};
  EXPECT_EQ(r.Names(), expected);
}

TEST(MeasureRegistryTest, CreateReturnsMatchingName) {
  MeasureRegistry r = MeasureRegistry::WithBuiltins();
  for (const std::string& name : r.Names()) {
    auto measure = r.Create(name);
    ASSERT_TRUE(measure.ok()) << name;
    EXPECT_EQ((*measure)->Name(), name);
  }
}

TEST(MeasureRegistryTest, CreateUnknownIsNotFound) {
  MeasureRegistry r = MeasureRegistry::WithBuiltins();
  auto measure = r.Create("no-such-measure");
  EXPECT_EQ(measure.status().code(), StatusCode::kNotFound);
}

TEST(MeasureRegistryTest, DuplicateRegistrationRejected) {
  MeasureRegistry r = MeasureRegistry::WithBuiltins();
  Status s = r.Register(
      "token", [] { return std::make_unique<distance::TokenDistance>(); });
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(MeasureRegistryTest, CustomMeasureRegisters) {
  MeasureRegistry r = MeasureRegistry::WithBuiltins();
  ASSERT_TRUE(r.Register("token-v2", [] {
                 return std::make_unique<distance::TokenDistance>();
               }).ok());
  EXPECT_TRUE(r.Contains("token-v2"));
  auto measure = r.Create("token-v2");
  ASSERT_TRUE(measure.ok());
  EXPECT_EQ((*measure)->Name(), "token");  // factory decides the instance
}

TEST(MeasureRegistryTest, RejectsEmptyNameAndNullFactory) {
  MeasureRegistry r;
  EXPECT_EQ(r.Register("", [] {
               return std::make_unique<distance::TokenDistance>();
             }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(r.Register("x", nullptr).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpe::engine
