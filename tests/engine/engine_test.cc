// Engine facade: batch mining API, distance-cache correctness across
// incremental insertions, and agreement with the direct mining calls.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "distance/token_distance.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

using testutil::ExpectBitIdentical;
using testutil::Shop;

TEST(EngineTest, BuildMatrixMatchesSerialReference) {
  workload::Scenario s = Shop(42, 30);
  Engine engine(s.Context(), {.threads = 4, .block = 8});
  engine.SetLog(s.log);

  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, s.Context());
  ASSERT_TRUE(serial.ok());
  auto built = engine.BuildMatrix("token");
  ASSERT_TRUE(built.ok()) << built.status();
  ExpectBitIdentical(*serial, *built);
}

TEST(EngineTest, UnknownMeasureIsNotFound) {
  workload::Scenario s = Shop(1, 5);
  Engine engine(s.Context());
  engine.SetLog(s.log);
  EXPECT_EQ(engine.BuildMatrix("bogus").status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, SecondBuildIsServedFromCache) {
  workload::Scenario s = Shop(9, 20);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);

  auto first = engine.BuildMatrix("token");
  ASSERT_TRUE(first.ok());
  const size_t pairs = 20 * 19 / 2;
  EXPECT_EQ(engine.cache_stats().misses, pairs);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_size(), pairs);

  auto second = engine.BuildMatrix("token");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.cache_stats().hits, pairs);
  EXPECT_EQ(engine.cache_stats().misses, pairs);  // no new misses
  ExpectBitIdentical(*first, *second);
}

TEST(EngineTest, CacheHitCorrectnessAfterPointInsertion) {
  workload::Scenario s = Shop(17, 24);
  const size_t initial = 18;

  Engine engine(s.Context(), {.threads = 4, .block = 8});
  engine.SetLog({s.log.begin(), s.log.begin() + initial});
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  const size_t initial_pairs = initial * (initial - 1) / 2;
  EXPECT_EQ(engine.cache_size(), initial_pairs);

  // Incremental: append the remaining queries one by one.
  for (size_t i = initial; i < s.log.size(); ++i) {
    ASSERT_TRUE(engine.AddQuery(s.log[i]).ok());
  }
  auto incremental = engine.BuildMatrix("token");
  ASSERT_TRUE(incremental.ok()) << incremental.status();

  // Every previously cached pair must be served as a hit...
  EXPECT_EQ(engine.cache_stats().hits, initial_pairs);
  const size_t total_pairs = s.log.size() * (s.log.size() - 1) / 2;
  EXPECT_EQ(engine.cache_size(), total_pairs);

  // ...and the result must still be bit-identical to a from-scratch serial
  // computation over the full log.
  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, s.Context());
  ASSERT_TRUE(serial.ok());
  ExpectBitIdentical(*serial, *incremental);
}

TEST(EngineTest, CacheIsPerMeasure) {
  workload::Scenario s = Shop(31, 10);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.BuildMatrix("structure").ok());
  EXPECT_EQ(engine.cache_size(), 2 * (10 * 9 / 2));
}

TEST(EngineTest, SetLogInvalidatesCache) {
  workload::Scenario s = Shop(13, 8);
  Engine engine(s.Context());
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  EXPECT_GT(engine.cache_size(), 0u);
  engine.SetLog(s.log);
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(EngineTest, DisabledCacheStillBuildsCorrectly) {
  workload::Scenario s = Shop(5, 15);
  Engine engine(s.Context(), {.threads = 2, .enable_cache = false});
  engine.SetLog(s.log);
  auto built = engine.BuildMatrix("token");
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(engine.cache_size(), 0u);
  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, s.Context());
  ASSERT_TRUE(serial.ok());
  ExpectBitIdentical(*serial, *built);
}

TEST(EngineTest, BatchMiningMatchesDirectCalls) {
  workload::Scenario s = Shop(77, 26);
  Engine engine(s.Context(), {.threads = 4});
  engine.SetLog(s.log);

  distance::TokenDistance token;
  auto matrix = distance::DistanceMatrix::Compute(s.log, token, s.Context());
  ASSERT_TRUE(matrix.ok());

  mining::KMedoidsOptions kopt;
  kopt.k = 3;
  auto km_direct = mining::KMedoids(*matrix, kopt);
  auto km_engine = engine.RunKMedoids("token", kopt);
  ASSERT_TRUE(km_direct.ok());
  ASSERT_TRUE(km_engine.ok()) << km_engine.status();
  EXPECT_EQ(km_direct->labels, km_engine->labels);
  EXPECT_EQ(km_direct->medoids, km_engine->medoids);

  mining::DbscanOptions dopt;
  dopt.epsilon = 0.4;
  dopt.min_points = 3;
  auto db_direct = mining::Dbscan(*matrix, dopt);
  auto db_engine = engine.RunDbscan("token", dopt);
  ASSERT_TRUE(db_direct.ok());
  ASSERT_TRUE(db_engine.ok());
  EXPECT_EQ(db_direct->labels, db_engine->labels);

  auto hc_direct = mining::CompleteLink(*matrix);
  auto hc_engine = engine.RunHierarchical("token");
  ASSERT_TRUE(hc_direct.ok());
  ASSERT_TRUE(hc_engine.ok());
  ASSERT_EQ(hc_direct->merges.size(), hc_engine->merges.size());
  for (size_t i = 0; i < hc_direct->merges.size(); ++i) {
    EXPECT_EQ(hc_direct->merges[i].left, hc_engine->merges[i].left);
    EXPECT_EQ(hc_direct->merges[i].right, hc_engine->merges[i].right);
    EXPECT_EQ(hc_direct->merges[i].distance, hc_engine->merges[i].distance);
  }

  mining::OutlierOptions oopt;
  oopt.p = 0.9;
  oopt.d = 0.8;
  auto out_direct = mining::DistanceBasedOutliers(*matrix, oopt);
  auto out_engine = engine.RunOutlierKnn("token", oopt, 3);
  ASSERT_TRUE(out_direct.ok());
  ASSERT_TRUE(out_engine.ok());
  EXPECT_EQ(out_direct->outliers, out_engine->outliers.outliers);
  ASSERT_EQ(out_engine->neighbors.size(), out_engine->outliers.outliers.size());
  for (size_t r = 0; r < out_engine->neighbors.size(); ++r) {
    auto nn =
        mining::NearestNeighbors(*matrix, out_engine->outliers.outliers[r], 3);
    ASSERT_TRUE(nn.ok());
    EXPECT_EQ(out_engine->neighbors[r], *nn);
  }
}

TEST(EngineTest, AsyncBuildMatchesSerialReference) {
  workload::Scenario s = Shop(21, 20);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);

  auto future = engine.BuildMatrixAsync("token");
  auto built = future.get();
  ASSERT_TRUE(built.ok()) << built.status();

  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, s.Context());
  ASSERT_TRUE(serial.ok());
  ExpectBitIdentical(*serial, *built);

  // The async build shares the cache: a following sync build is all hits.
  auto second = engine.BuildMatrix("token");
  ASSERT_TRUE(second.ok());
  const size_t pairs = 20 * 19 / 2;
  EXPECT_EQ(engine.cache_stats().hits, pairs);
  ExpectBitIdentical(*serial, *second);
}

TEST(EngineTest, AsyncBuildsOverlapAcrossMeasures) {
  workload::Scenario s = Shop(23, 24);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);

  // Two in-flight builds at once; neither blocks the caller.
  auto token_future = engine.BuildMatrixAsync("token");
  auto structure_future = engine.BuildMatrixAsync("structure");
  auto token = token_future.get();
  auto structure = structure_future.get();
  ASSERT_TRUE(token.ok()) << token.status();
  ASSERT_TRUE(structure.ok()) << structure.status();

  distance::TokenDistance token_measure;
  auto token_serial =
      distance::DistanceMatrix::Compute(s.log, token_measure, s.Context());
  ASSERT_TRUE(token_serial.ok());
  ExpectBitIdentical(*token_serial, *token);

  auto structure_sync = engine.BuildMatrix("structure");
  ASSERT_TRUE(structure_sync.ok());
  ExpectBitIdentical(*structure_sync, *structure);
}

TEST(EngineTest, DestructorDrainsInFlightAsyncBuilds) {
  workload::Scenario s = Shop(27, 18);
  // The future is deliberately dropped without get(): the engine's
  // destructor must block until the task is done, or the task would touch
  // destroyed members (caught by the ASan run of this suite).
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);
  engine.BuildMatrixAsync("token");
  engine.BuildMatrixAsync("structure");
}

TEST(EngineTest, AsyncBuildOfUnknownMeasureFailsFast) {
  workload::Scenario s = Shop(2, 5);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);
  auto future = engine.BuildMatrixAsync("bogus");
  EXPECT_EQ(future.get().status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, CacheByteBudgetIsEnforcedDuringBuilds) {
  workload::Scenario s = Shop(11, 16);
  const size_t budget = 40 * DistanceCache::kEntryBytes;  // < 120 pairs
  Engine engine(s.Context(), {.threads = 2, .cache_max_bytes = budget});
  engine.SetLog(s.log);

  auto built = engine.BuildMatrix("token");
  ASSERT_TRUE(built.ok());
  EXPECT_LE(engine.cache_bytes_used(), budget);
  EXPECT_GT(engine.cache_stats().evictions, 0u);

  // Evicted pairs recompute on demand — the result stays bit-identical.
  distance::TokenDistance token;
  auto serial = distance::DistanceMatrix::Compute(s.log, token, s.Context());
  ASSERT_TRUE(serial.ok());
  auto rebuilt = engine.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_LE(engine.cache_bytes_used(), budget);
  ExpectBitIdentical(*serial, *rebuilt);
}

TEST(EngineTest, RegistryAcceptsCustomMeasure) {
  workload::Scenario s = Shop(3, 12);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.registry()
                  .Register("my-token",
                            [] {
                              return std::make_unique<
                                  distance::TokenDistance>();
                            })
                  .ok());
  auto mine = engine.BuildMatrix("my-token");
  auto builtin = engine.BuildMatrix("token");
  ASSERT_TRUE(mine.ok());
  ASSERT_TRUE(builtin.ok());
  ExpectBitIdentical(*mine, *builtin);
}

}  // namespace
}  // namespace dpe::engine
