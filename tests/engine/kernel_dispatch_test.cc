// Kernel-dispatch property tests at the measure/engine level: for every
// backend compiled+runnable on this CPU, a full matrix build under every
// built-in measure — forced onto that backend via the MeasureContext
// override — is bit-identical to the scalar-forced build. The log includes
// duplicate queries (identical feature sets, distance exactly 0) and very
// short next to very long queries, so the kernels see the degenerate pair
// shapes, not just average ones; the kernel-level adversarial inputs
// (empty/disjoint/straddling-width) live in tests/common/simd_test.cc.
//
// Also covers the loud-failure contract (a forced backend the CPU cannot
// run fails the build with InvalidArgument) and the engine-level knob
// (EngineOptions::kernel_backend).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "distance/token_distance.h"
#include "engine/engine.h"
#include "engine/matrix_builder.h"
#include "engine/measure_registry.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

using common::simd::BackendName;
using common::simd::KernelBackend;
using common::simd::RunnableBackends;
using testutil::ExpectBitIdentical;
using testutil::Shop;

/// A log with adversarial pair shapes: scenario queries plus exact
/// duplicates, so the kernels see identical-set pairs (distance exactly 0,
/// full-overlap intersections) alongside the organic short-vs-long ones.
std::vector<sql::SelectQuery> AdversarialLog() {
  workload::Scenario s = Shop(2026, 18);
  std::vector<sql::SelectQuery> log = s.log;
  log.push_back(log[0]);  // duplicate: identical sets, distance 0
  log.push_back(log[7]);
  return log;
}

TEST(KernelDispatchTest, AllMeasuresBitIdenticalAcrossBackends) {
  workload::Scenario s = Shop(2026, 18);
  std::vector<sql::SelectQuery> log = AdversarialLog();
  MeasureRegistry registry = MeasureRegistry::WithBuiltins();

  for (const std::string& name : registry.Names()) {
    // Scalar-forced reference build.
    distance::MeasureContext scalar_ctx = s.Context();
    scalar_ctx.kernel_backend = KernelBackend::kScalar;
    auto scalar_measure = registry.Create(name);
    ASSERT_TRUE(scalar_measure.ok());
    MatrixBuilder builder(nullptr, MatrixBuilderOptions{4});
    auto reference = builder.Build(log, **scalar_measure, scalar_ctx);
    ASSERT_TRUE(reference.ok()) << name << ": " << reference.status();

    for (KernelBackend backend : RunnableBackends()) {
      distance::MeasureContext ctx = s.Context();
      ctx.kernel_backend = backend;
      auto measure = registry.Create(name);  // fresh instance per backend
      ASSERT_TRUE(measure.ok());
      auto built = builder.Build(log, **measure, ctx);
      ASSERT_TRUE(built.ok())
          << name << " on " << BackendName(backend) << ": " << built.status();
      ExpectBitIdentical(*reference, *built);
    }
  }
}

TEST(KernelDispatchTest, EngineOptionForcesBackendBitIdentically) {
  workload::Scenario s = Shop(31, 12);
  EngineOptions scalar_options;
  scalar_options.kernel_backend = KernelBackend::kScalar;
  Engine scalar_engine(s.Context(), scalar_options);
  scalar_engine.SetLog(s.log);
  auto reference = scalar_engine.BuildMatrix("token");
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (KernelBackend backend : RunnableBackends()) {
    EngineOptions options;
    options.kernel_backend = backend;
    Engine engine(s.Context(), options);
    engine.SetLog(s.log);
    for (const char* measure : {"token", "levenshtein-token"}) {
      auto built = engine.BuildMatrix(measure);
      ASSERT_TRUE(built.ok())
          << measure << " on " << BackendName(backend) << ": "
          << built.status();
    }
    auto token = engine.BuildMatrix("token");
    ASSERT_TRUE(token.ok());
    ExpectBitIdentical(*reference, *token);
  }
}

TEST(KernelDispatchTest, DefaultEngineOptionsPreserveContextForcedBackend) {
  // A backend forced on the MeasureContext must survive Engine construction
  // with default options (kAuto means "no engine-level opinion", not
  // "reset to auto").
  workload::Scenario s = Shop(17, 8);
  distance::MeasureContext ctx = s.Context();
  ctx.kernel_backend = KernelBackend::kScalar;
  Engine engine(ctx);  // default EngineOptions
  engine.SetLog(s.log);
  auto built = engine.BuildMatrix("token");
  ASSERT_TRUE(built.ok()) << built.status();

  // And an explicit engine option still wins over the context.
  EngineOptions options;
  options.kernel_backend = RunnableBackends().back();
  Engine overridden(ctx, options);
  overridden.SetLog(s.log);
  auto built2 = overridden.BuildMatrix("token");
  ASSERT_TRUE(built2.ok()) << built2.status();
  ExpectBitIdentical(*built, *built2);
}

TEST(KernelDispatchTest, UnrunnableForcedBackendFailsTheBuildLoudly) {
  // Only meaningful where some backend is NOT runnable (e.g. a scalar-only
  // build, or non-AVX2 hardware); on a machine that runs everything the
  // loop body never executes and the test trivially passes.
  workload::Scenario s = Shop(5, 6);
  for (KernelBackend backend :
       {KernelBackend::kSse42, KernelBackend::kAvx2}) {
    if (common::simd::BackendIsRunnable(backend)) continue;
    EngineOptions options;
    options.kernel_backend = backend;
    Engine engine(s.Context(), options);
    engine.SetLog(s.log);
    auto built = engine.BuildMatrix("token");
    ASSERT_FALSE(built.ok()) << BackendName(backend);
    EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(KernelDispatchTest, ShardedBuildsHonorTheForcedBackend) {
  // The shard worker path flows the context's backend through BuildTiles;
  // merged output must match the scalar direct build bit for bit.
  workload::Scenario s = Shop(91, 13);
  distance::MeasureContext scalar_ctx = s.Context();
  scalar_ctx.kernel_backend = KernelBackend::kScalar;
  distance::TokenDistance token;
  MatrixBuilder builder(nullptr, MatrixBuilderOptions{4});
  auto reference = builder.Build(s.log, token, scalar_ctx);
  ASSERT_TRUE(reference.ok());

  for (KernelBackend backend : RunnableBackends()) {
    distance::MeasureContext ctx = s.Context();
    ctx.kernel_backend = backend;
    auto plan = PlanShards(s.log.size(), 4, 2);
    ASSERT_TRUE(plan.ok());
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         ("kernel_dispatch_shards_" + std::string(BackendName(backend))))
            .string();
    std::filesystem::remove_all(dir);
    for (size_t shard = 0; shard < 2; ++shard) {
      auto store = store::MatrixStore::Open(dir);
      ASSERT_TRUE(store.ok());
      ShardWorker worker(nullptr);
      auto manifest =
          worker.Run("token", s.log, token, ctx, *plan, shard, *store);
      ASSERT_TRUE(manifest.ok()) << manifest.status();
    }
    auto store = store::MatrixStore::OpenExisting(dir);
    ASSERT_TRUE(store.ok());
    auto merged = ShardCoordinator().Merge(*store, "token", 2);
    ASSERT_TRUE(merged.ok()) << merged.status();
    ExpectBitIdentical(*reference, *merged);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace dpe::engine
