// Engine-level compaction + self-healing load, end to end: CompactNow and
// the background trigger publish new snapshot generations while queries
// keep arriving, restarts from a compacted checkpoint are bit-identical to
// a never-compacted engine and replay zero work, and scrub_on_load turns a
// corrupt snapshot into a recompute instead of a dead checkpoint.
//
// Suite name matters: the TSan CI leg (scripts/check.sh) runs
// `CompactionTest.*` from this binary, so the interleaved-append test here
// doubles as the race detector for the append/fold/publish handoff.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "store/matrix_store.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectBitIdentical;
using testutil::Shop;

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("compaction_engine_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(CompactionTest, CompactNowPublishesAndTheRestartReplaysNothing) {
  workload::Scenario s = Shop(61, 16);
  EngineOptions options;
  options.threads = 2;

  Engine engine(s.Context(), options);
  engine.SetLog({s.log.begin(), s.log.begin() + 12});
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
  for (size_t i = 12; i < 16; ++i) {
    ASSERT_TRUE(engine.AddQuery(s.log[i]).ok());
  }
  auto reference = engine.BuildMatrix("token");  // journals rows 12..15
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(engine.checkpoint_generation(), 0u);

  auto compacted = engine.CompactNow();
  ASSERT_TRUE(compacted.ok()) << compacted.status();
  EXPECT_TRUE(*compacted);
  EXPECT_EQ(engine.checkpoint_generation(), 1u);
  // The fold subsumed the journal: nothing left to replay on restart.
  auto store = store::MatrixStore::OpenExisting(dir_);
  ASSERT_TRUE(store.ok());
  auto journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->empty());

  Engine restored(s.Context(), options);
  CheckpointLoadReport report;
  ASSERT_TRUE(restored.LoadCheckpoint(dir_, &report).ok());
  EXPECT_EQ(report.queries_restored, 16u);
  EXPECT_EQ(report.journal_records_replayed, 0u);
  auto rebuilt = restored.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(restored.cache_stats().misses, 0u);  // zero recomputation
  ExpectBitIdentical(*reference, *rebuilt);
}

TEST_F(CompactionTest, BackgroundTriggerCompactsWhenTheJournalOutgrowsIt) {
  workload::Scenario s = Shop(67, 14);
  EngineOptions options;
  options.threads = 2;
  options.enable_compaction = true;
  options.compaction_trigger_bytes = 1;  // every journaled byte triggers

  Engine engine(s.Context(), options);
  engine.SetLog({s.log.begin(), s.log.begin() + 10});
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
  for (size_t i = 10; i < 14; ++i) {
    ASSERT_TRUE(engine.AddQuery(s.log[i]).ok());
  }
  ASSERT_TRUE(engine.BuildMatrix("token").ok());

  // The cycle runs on the engine's pool; poll for the publish.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.checkpoint_generation() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(engine.checkpoint_generation(), 1u)
      << "background compaction never published";
}

TEST_F(CompactionTest, InterleavedAppendsDuringCompactionStayBitIdentical) {
  // Appends and explicit compaction cycles race through the public API
  // while the background trigger fires too; the surviving checkpoint must
  // restart bit-identical to an engine that never compacted at all.
  workload::Scenario s = Shop(71, 18);
  EngineOptions options;
  options.threads = 2;
  options.enable_compaction = true;
  options.compaction_trigger_bytes = 1;

  {
    Engine engine(s.Context(), options);
    engine.SetLog({s.log.begin(), s.log.begin() + 8});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());

    std::atomic<bool> stop{false};
    std::thread compactor([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = engine.CompactNow();
        if (!result.ok()) break;  // engine shutting down
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (size_t i = 8; i < 18; ++i) {
      ASSERT_TRUE(engine.AddQuery(s.log[i]).ok());
      ASSERT_TRUE(engine.BuildMatrix("token").ok());
    }
    stop.store(true, std::memory_order_relaxed);
    compactor.join();
  }

  Engine restored(s.Context(), options);
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  EXPECT_EQ(restored.log_size(), 18u);
  auto rebuilt = restored.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(restored.cache_stats().misses, 0u);

  Engine cold(s.Context(), EngineOptions{.threads = 2});
  cold.SetLog(s.log);
  auto full = cold.BuildMatrix("token");
  ASSERT_TRUE(full.ok());
  ExpectBitIdentical(*full, *rebuilt);
}

TEST_F(CompactionTest, DestructionMidCompactionLeavesALoadableCheckpoint) {
  workload::Scenario s = Shop(73, 12);
  EngineOptions options;
  options.threads = 2;
  options.enable_compaction = true;
  options.compaction_trigger_bytes = 1;
  {
    Engine engine(s.Context(), options);
    engine.SetLog({s.log.begin(), s.log.begin() + 8});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    for (size_t i = 8; i < 12; ++i) {
      ASSERT_TRUE(engine.AddQuery(s.log[i]).ok());
    }
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    // Destructor runs with a compaction cycle (likely) still in flight: it
    // must stop the cycle cleanly, never hang, never tear the store.
  }
  Engine restored(s.Context(), options);
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  EXPECT_EQ(restored.log_size(), 12u);
  auto rebuilt = restored.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  Engine cold(s.Context(), EngineOptions{.threads = 2});
  cold.SetLog(s.log);
  auto full = cold.BuildMatrix("token");
  ASSERT_TRUE(full.ok());
  ExpectBitIdentical(*full, *rebuilt);
}

TEST_F(CompactionTest, ScrubOnLoadRecomputesQuarantinedCells) {
  workload::Scenario s = Shop(79, 12);
  EngineOptions options;
  options.threads = 2;
  auto reference = [&] {
    Engine engine(s.Context(), options);
    engine.SetLog(s.log);
    auto m = engine.BuildMatrix("token");
    EXPECT_TRUE(m.ok());
    EXPECT_TRUE(engine.SaveCheckpoint(dir_).ok());
    return std::move(m).value();
  }();

  // Flip a byte in the snapshot's entry-chunk region (the tail of the
  // file): cache cells are damaged, the query-log core stays intact.
  const fs::path path = fs::path(dir_) / "snapshot.dpe";
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 8u);
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x3c);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  // Strict load: typed failure, engine untouched.
  Engine strict(s.Context(), options);
  EXPECT_EQ(strict.LoadCheckpoint(dir_).code(), StatusCode::kParseError);

  // Self-healing load: scrub, retry, recompute what the quarantine cost.
  EngineOptions healing = options;
  healing.scrub_on_load = true;
  Engine engine(s.Context(), healing);
  CheckpointLoadReport report;
  ASSERT_TRUE(engine.LoadCheckpoint(dir_, &report).ok());
  EXPECT_TRUE(report.scrubbed);
  EXPECT_GT(report.cells_quarantined, 0u);
  EXPECT_GE(report.cells_recomputed, report.cells_quarantined);
  EXPECT_EQ(report.queries_restored, 12u);

  // The recomputed matrix is exactly the pre-corruption one — quarantine
  // plus recompute must never yield a wrong cell.
  auto rebuilt = engine.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  ExpectBitIdentical(reference, *rebuilt);

  // The scrub repaired the files on disk: a later strict load is clean.
  Engine after(s.Context(), options);
  CheckpointLoadReport clean;
  ASSERT_TRUE(after.LoadCheckpoint(dir_, &clean).ok());
  EXPECT_FALSE(clean.scrubbed);
}

}  // namespace
}  // namespace dpe::engine
