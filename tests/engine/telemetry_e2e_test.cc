// End-to-end live telemetry: the engine's embedded scrape server, the push
// exporter's failure isolation, and the crypto-layer instrumentation that
// encrypted-measure builds light up.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/dpe.h"
#include "core/log_encryptor.h"
#include "engine/engine.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

using testutil::ExpectBitIdentical;
using testutil::Shop;

bool EnvSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0';
}

TEST(TelemetryE2eTest, OffByDefaultStartsNoServerOrPusher) {
  if (EnvSet("DPE_TELEMETRY_PORT") || EnvSet("DPE_TELEMETRY_PUSH_URL")) {
    GTEST_SKIP() << "telemetry env vars set; default-off does not apply";
  }
  workload::Scenario s = Shop(31, 8);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .metrics = &registry});
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  EXPECT_EQ(engine.telemetry_server(), nullptr);
  EXPECT_EQ(engine.metrics_pusher(), nullptr);
  EXPECT_EQ(engine.telemetry_port(), -1);
}

TEST(TelemetryE2eTest, ScrapeDuringAndAfterBuildOverRealHttp) {
  constexpr size_t kQueries = 48;
  workload::Scenario s = Shop(37, kQueries);
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.block = 8;
  options.metrics = &registry;
  options.telemetry_port = 0;  // ephemeral
  Engine engine(s.Context(), options);
  engine.SetLog(s.log);
  const int port = engine.telemetry_port();
  ASSERT_GT(port, 0);

  // Scrape while a build is (potentially still) in flight: the server must
  // answer valid exposition text concurrently with the compute.
  auto future = engine.BuildMatrixAsync("token");
  obs::HttpResponse mid;
  std::string error;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", port, "/metrics", 5000, &mid, &error))
      << error;
  EXPECT_EQ(mid.status_code, 200);
  EXPECT_NE(mid.body.find("# TYPE "), std::string::npos);
  ASSERT_TRUE(future.get().ok());

  // After the build, the scraped counter is exact.
  obs::HttpResponse done;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", port, "/metrics", 5000, &done,
                           &error))
      << error;
  const std::string want =
      "dpe_distance_calls_total{measure=\"token\"} " +
      std::to_string(kQueries * (kQueries - 1) / 2);
  EXPECT_NE(done.body.find(want), std::string::npos)
      << "missing \"" << want << "\" in scrape";
  // Rolling-window rate gauges ride along in the same exposition.
  EXPECT_NE(done.body.find("dpe_distance_calls_per_sec"), std::string::npos);

  obs::HttpResponse health;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", port, "/healthz", 5000, &health,
                           &error))
      << error;
  EXPECT_EQ(health.status_code, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"measure\":\"token\""), std::string::npos);

  obs::HttpResponse stats;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", port, "/stats", 5000, &stats,
                           &error))
      << error;
  EXPECT_EQ(stats.status_code, 200);
  EXPECT_NE(stats.body.find("\"metrics\""), std::string::npos);

  obs::HttpResponse trace;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", port, "/trace", 5000, &trace,
                           &error))
      << error;
  EXPECT_EQ(trace.status_code, 200);
  EXPECT_NE(trace.body.find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetryE2eTest, DeadPushGatewayNeverBlocksOrChangesBuilds) {
  workload::Scenario s = Shop(41, 18);

  obs::MetricsRegistry plain_registry;
  Engine plain(s.Context(), {.threads = 2, .metrics = &plain_registry});
  plain.SetLog(s.log);
  auto baseline = plain.BuildMatrix("token");
  ASSERT_TRUE(baseline.ok());

  // Grab a loopback port with nothing listening behind it.
  int dead_port = 0;
  {
    auto placeholder = obs::HttpSink::Start();
    ASSERT_NE(placeholder, nullptr);
    dead_port = placeholder->port();
  }

  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.metrics = &registry;
  options.telemetry_port = 0;
  options.telemetry_push_url =
      "http://127.0.0.1:" + std::to_string(dead_port) + "/push";
  options.telemetry_push_interval_ms = 10;
  options.telemetry_push_min_backoff_ms = 10;
  options.telemetry_push_max_backoff_ms = 40;
  Engine engine(s.Context(), options);
  engine.SetLog(s.log);

  auto built = engine.BuildMatrix("token");
  ASSERT_TRUE(built.ok()) << built.status();
  // Telemetry on (server + flapping pusher) vs off: bit-identical results.
  ExpectBitIdentical(*baseline, *built);

  const obs::MetricsPusher* pusher = engine.metrics_pusher();
  ASSERT_NE(pusher, nullptr);
  for (int i = 0; i < 500 && pusher->failures() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(pusher->failures(), 1u);
  EXPECT_EQ(pusher->pushes(), 0u);
  EXPECT_GT(pusher->backoff_ms(), 0);
  EXPECT_LE(pusher->backoff_ms(), options.telemetry_push_max_backoff_ms);
  // Engine destruction mid-backoff must not hang (covered by scope exit).
}

TEST(TelemetryE2eTest, EncryptedResultMeasureExportsCryptoOpsAndSpans) {
  // Provider-side build of the homomorphic result measure: the Paillier
  // aggregate folds underneath it must surface as scheme-labeled crypto
  // ops (process-default registry) and as spans in the engine's trace.
  workload::ScenarioOptions scenario_options;
  scenario_options.seed = 77;
  scenario_options.rows_per_relation = 40;
  scenario_options.log_size = 12;
  auto scenario = workload::MakeShopScenario(scenario_options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();

  crypto::KeyManager keys("telemetry-e2e");
  core::LogEncryptor::Options enc_options;
  enc_options.paillier_bits = 256;
  enc_options.ope_range_bits = 80;
  enc_options.rng_seed = "telemetry-e2e";
  auto enc = core::LogEncryptor::Create(
      core::CanonicalScheme(core::MeasureKind::kResult), keys,
      scenario->database, scenario->log, scenario->domains, enc_options);
  ASSERT_TRUE(enc.ok()) << enc.status();
  auto artifacts = enc->EncryptAll();
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();

  distance::MeasureContext ctx;
  db::DomainRegistry empty_domains;
  ASSERT_TRUE(artifacts->encrypted_db.has_value());
  ctx.database = &*artifacts->encrypted_db;
  ctx.exec_options = &artifacts->provider_options;
  ctx.domains = artifacts->encrypted_domains.has_value()
                    ? &*artifacts->encrypted_domains
                    : &empty_domains;

  const auto paillier_ops = [] {
    uint64_t total = 0;
    for (const obs::MetricSample& sample :
         obs::MetricsRegistry::Default().Snapshot().samples) {
      if (sample.name != "crypto.ops") continue;
      for (const auto& [k, v] : sample.labels) {
        if (k == "scheme" && v == "paillier") total += sample.counter_value;
      }
    }
    return total;
  };
  const uint64_t ops_before = paillier_ops();

  obs::MetricsRegistry registry;
  Engine engine(ctx, {.threads = 2, .trace = true, .metrics = &registry});
  engine.SetLog(artifacts->encrypted_log);
  auto built = engine.BuildMatrix("result");
  ASSERT_TRUE(built.ok()) << built.status();

  // The encrypted build did real Paillier work and counted it.
  EXPECT_GT(paillier_ops(), ops_before);

  // Spans from the crypto/cryptdb layer landed in the engine's trace via
  // the ambient buffer (installed on the build and on pool workers).
  bool crypto_span = false;
  for (const obs::TraceEvent& event : engine.trace().Events()) {
    if (event.name.rfind("crypto.", 0) == 0 ||
        event.name.rfind("cryptdb.", 0) == 0) {
      crypto_span = true;
      break;
    }
  }
  EXPECT_TRUE(crypto_span) << "no crypto./cryptdb. span in the build trace";
}

}  // namespace
}  // namespace dpe::engine
