// Engine observability: build reports, metric counters, trace capture, and
// the guarantee that turning tracing on never changes a computed distance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

using testutil::ExpectBitIdentical;
using testutil::Shop;

uint64_t CounterValue(obs::MetricsRegistry& registry, const std::string& name,
                      const obs::Labels& labels = {}) {
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::MetricSample* sample = snapshot.Find(name, labels);
  return sample != nullptr ? sample->counter_value : 0;
}

TEST(ObservabilityTest, ColdBuildReportAccountsEveryCell) {
  workload::Scenario s = Shop(3, 24);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .block = 8, .metrics = &registry});
  engine.SetLog(s.log);

  BuildReport report;
  auto built = engine.BuildMatrix("token", &report);
  ASSERT_TRUE(built.ok()) << built.status();

  const uint64_t cells = 24 * 23 / 2;
  EXPECT_EQ(report.measure, "token");
  EXPECT_EQ(report.n, 24u);
  EXPECT_EQ(report.cells_total, cells);
  EXPECT_EQ(report.cells_computed, cells);
  EXPECT_EQ(report.cells_cached, 0u);
  EXPECT_FALSE(report.backend.empty());
  EXPECT_GT(report.wall_ms, 0.0);
  ASSERT_FALSE(report.stages.empty());
  const auto has_stage = [&report](const char* name) {
    return std::any_of(report.stages.begin(), report.stages.end(),
                       [name](const obs::StageTiming& st) {
                         return st.name == name;
                       });
  };
  EXPECT_TRUE(has_stage("cache_scan"));
  EXPECT_TRUE(has_stage("compute"));
  EXPECT_TRUE(has_stage("cache_insert"));
}

TEST(ObservabilityTest, DistanceCallCounterEqualsUpperTriangle) {
  workload::Scenario s = Shop(7, 20);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .block = 8, .metrics = &registry});
  engine.SetLog(s.log);

  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  EXPECT_EQ(CounterValue(registry, "distance.calls", {{"measure", "token"}}),
            20u * 19 / 2);

  // A warm rebuild is served from the cache: no new distance calls.
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  EXPECT_EQ(CounterValue(registry, "distance.calls", {{"measure", "token"}}),
            20u * 19 / 2);
}

TEST(ObservabilityTest, WarmBuildReportShowsAllCellsCached) {
  workload::Scenario s = Shop(5, 16);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .metrics = &registry});
  engine.SetLog(s.log);

  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  BuildReport warm;
  ASSERT_TRUE(engine.BuildMatrix("token", &warm).ok());
  EXPECT_EQ(warm.cells_computed, 0u);
  EXPECT_EQ(warm.cells_cached, warm.cells_total);

  // last_build_report() returns the warm build's copy.
  const BuildReport last = engine.last_build_report();
  EXPECT_EQ(last.cells_computed, 0u);
  EXPECT_EQ(last.cells_cached, warm.cells_total);
}

TEST(ObservabilityTest, ApiLatencyHistogramRecordsEveryCall) {
  workload::Scenario s = Shop(11, 12);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .metrics = &registry});
  engine.SetLog(s.log);

  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::MetricSample* sample = snapshot.Find(
      "engine.api_ms", {{"api", "build_matrix"}, {"measure", "token"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->histogram.count, 2u);
}

TEST(ObservabilityTest, TraceCapturesSpansWhenEnabled) {
  workload::Scenario s = Shop(13, 12);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(),
                {.threads = 2, .trace = true, .metrics = &registry});
  engine.SetLog(s.log);

  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  const std::vector<obs::TraceEvent> events = engine.trace().Events();
  ASSERT_FALSE(events.empty());
  const auto has_span = [&events](const char* name) {
    return std::any_of(events.begin(), events.end(),
                       [name](const obs::TraceEvent& e) {
                         return e.name == name;
                       });
  };
  EXPECT_TRUE(has_span("engine.build_matrix"));
  EXPECT_TRUE(has_span("build.compute"));
  EXPECT_TRUE(has_span("build.cache_scan"));

  const std::string json = engine.trace().ToChromeJson();
  EXPECT_NE(json.find("\"name\":\"engine.build_matrix\""), std::string::npos);
}

TEST(ObservabilityTest, TraceOffByDefaultAndNeverChangesResults) {
  workload::Scenario s = Shop(17, 18);

  obs::MetricsRegistry plain_registry;
  Engine plain(s.Context(), {.threads = 2, .metrics = &plain_registry});
  plain.SetLog(s.log);
  auto baseline = plain.BuildMatrix("token");
  ASSERT_TRUE(baseline.ok());
  // DPE_TRACE in the environment legitimately turns capture on (the
  // check.sh traced rerun sets it); default-off only holds without it.
  const char* env = std::getenv("DPE_TRACE");
  const bool env_trace = env != nullptr && *env != '\0' &&
                         std::string_view(env) != "0";
  if (!env_trace) {
    EXPECT_EQ(plain.trace().size(), 0u);
  }

  obs::MetricsRegistry traced_registry;
  Engine traced(s.Context(),
                {.threads = 2, .trace = true, .metrics = &traced_registry});
  traced.SetLog(s.log);
  auto traced_m = traced.BuildMatrix("token");
  ASSERT_TRUE(traced_m.ok());
  EXPECT_GT(traced.trace().size(), 0u);

  ExpectBitIdentical(*baseline, *traced_m);
}

TEST(ObservabilityTest, MiningRunsRecordCountersAndApiSpans) {
  workload::Scenario s = Shop(19, 16);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .metrics = &registry});
  engine.SetLog(s.log);

  ASSERT_TRUE(engine.RunKMedoids("token", {.k = 3}).ok());
  ASSERT_TRUE(engine.RunHierarchical("token").ok());

  EXPECT_EQ(CounterValue(registry, "mining.kmedoids.runs"), 1u);
  EXPECT_GT(CounterValue(registry, "mining.kmedoids.iterations"), 0u);
  EXPECT_EQ(CounterValue(registry, "mining.hierarchical.runs"), 1u);
  EXPECT_EQ(CounterValue(registry, "mining.hierarchical.merge_rounds"),
            16u - 1);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(snapshot.Find("engine.api_ms",
                          {{"api", "kmedoids"}, {"measure", "token"}}),
            nullptr);
  EXPECT_NE(snapshot.Find("engine.api_ms",
                          {{"api", "hierarchical"}, {"measure", "token"}}),
            nullptr);
}

TEST(ObservabilityTest, StatsReportCarriesInfoAndGauges) {
  workload::Scenario s = Shop(23, 12);
  obs::MetricsRegistry registry;
  Engine engine(s.Context(), {.threads = 2, .metrics = &registry});
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.BuildMatrix("token").ok());

  const obs::StatsReport stats = engine.Stats();
  const auto info_value = [&stats](const char* key) -> std::string {
    for (const auto& [k, v] : stats.info) {
      if (k == key) return v;
    }
    return "";
  };
  EXPECT_FALSE(info_value("kernel_backend").empty());
  EXPECT_FALSE(info_value("threads").empty());
  EXPECT_EQ(info_value("log_size"), "12");
  EXPECT_FALSE(stats.stages.empty());

  const obs::MetricSample* hits = stats.metrics.Find("cache.hits");
  ASSERT_NE(hits, nullptr);
  const obs::MetricSample* threads = stats.metrics.Find("threadpool.threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_DOUBLE_EQ(threads->gauge_value, 2.0);

  // The exporters run over the full engine snapshot without tripping.
  EXPECT_FALSE(stats.ToPrometheusText().empty());
  EXPECT_FALSE(stats.ToJson().empty());
}

TEST(ObservabilityTest, CheckpointReportsCoverSaveAndLoad) {
  workload::Scenario s = Shop(29, 10);
  const std::string dir =
      ::testing::TempDir() + "/dpe_obs_checkpoint_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());

  obs::MetricsRegistry save_registry;
  Engine engine(s.Context(), {.threads = 2, .metrics = &save_registry});
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.BuildMatrix("token").ok());

  CheckpointSaveReport save_report;
  ASSERT_TRUE(engine.SaveCheckpoint(dir, &save_report).ok());
  EXPECT_EQ(save_report.queries, 10u);
  EXPECT_EQ(save_report.cache_entries, 10u * 9 / 2);
  EXPECT_FALSE(save_report.stages.empty());
  EXPECT_EQ(CounterValue(save_registry, "checkpoint.saves"), 1u);

  obs::MetricsRegistry load_registry;
  Engine restored(s.Context(), {.threads = 2, .metrics = &load_registry});
  CheckpointLoadReport load_report;
  ASSERT_TRUE(restored.LoadCheckpoint(dir, &load_report).ok());
  EXPECT_EQ(load_report.queries_restored, 10u);
  EXPECT_FALSE(load_report.journal_tail_truncated);
  EXPECT_FALSE(load_report.stages.empty());
  EXPECT_EQ(CounterValue(load_registry, "checkpoint.loads"), 1u);
}

}  // namespace
}  // namespace dpe::engine
