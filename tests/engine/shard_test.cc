// Sharded matrix builds: the plan partitions the tile schedule
// deterministically, a k-shard build round-tripped through on-disk shard
// files merges bit-identical to MatrixBuilder::Build for every built-in
// measure, and every corruption mode — overlapping ranges, missing shards,
// flipped bytes, wrong-n manifests — fails with a typed Status, never UB.

#include "engine/shard.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "distance/token_distance.h"
#include "engine/engine.h"
#include "engine/matrix_builder.h"
#include "engine/measure_registry.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectBitIdentical;
using testutil::Shop;

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("shard_test_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

// -- Schedule / plan properties ----------------------------------------------

TEST_F(ShardTest, TileScheduleCoversUpperTriangleExactlyOnce) {
  for (size_t n : {0u, 1u, 2u, 7u, 16u, 33u}) {
    for (size_t block : {1u, 3u, 8u, 50u}) {
      const auto tiles = TileSchedule(n, block);
      EXPECT_EQ(tiles.size(), TileCount(n, block));
      std::vector<int> seen(n * n, 0);
      size_t cells = 0;
      for (const auto& [bi, bj] : tiles) {
        size_t tile_cells = 0;
        ForEachTileCell(n, block, bi, bj, [&](size_t i, size_t j) {
          ASSERT_LT(i, j);
          ++seen[i * n + j];
          ++cells;
          ++tile_cells;
        });
        // The closed-form count matches the traversal it summarizes.
        EXPECT_EQ(TileCellCount(n, block, bi, bj), tile_cells)
            << "tile (" << bi << ", " << bj << ") n=" << n
            << " block=" << block;
      }
      EXPECT_EQ(cells, n * (n - 1) / 2) << "n=" << n << " block=" << block;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          EXPECT_EQ(seen[i * n + j], 1)
              << "cell (" << i << ", " << j << ") n=" << n
              << " block=" << block;
        }
      }
    }
  }
}

TEST_F(ShardTest, RangeWalkerAndCellCountMatchTheMaterializedSchedule) {
  // ForEachTileInRange and RangeCellCount (the sparse-shard codec's
  // allocation-free walkers) must agree with the materialized TileSchedule
  // on every subrange, including out-of-schedule tails (clamped).
  for (size_t n : {0u, 1u, 5u, 16u, 33u}) {
    for (size_t block : {1u, 4u, 50u}) {
      const auto tiles = TileSchedule(n, block);
      for (size_t begin = 0; begin <= tiles.size(); ++begin) {
        for (size_t end : {begin, (begin + tiles.size() + 1) / 2,
                           tiles.size(), tiles.size() + 7}) {
          if (end < begin) continue;
          std::vector<std::pair<size_t, size_t>> walked;
          common::ForEachTileInRange(
              n, block, begin, end,
              [&](size_t bi, size_t bj) { walked.emplace_back(bi, bj); });
          const size_t clamped = std::min(end, tiles.size());
          ASSERT_EQ(walked.size(), clamped - begin)
              << "n=" << n << " block=" << block << " [" << begin << ", "
              << end << ")";
          size_t cells = 0;
          for (size_t t = begin; t < clamped; ++t) {
            EXPECT_EQ(walked[t - begin], tiles[t]);
            cells += TileCellCount(n, block, tiles[t].first, tiles[t].second);
          }
          auto counted = common::RangeCellCount(n, block, begin, end);
          ASSERT_TRUE(counted.ok());
          EXPECT_EQ(*counted, cells)
              << "n=" << n << " block=" << block << " [" << begin << ", "
              << end << ")";
        }
      }
    }
  }
  EXPECT_EQ(common::RangeCellCount(5, 0, 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardTest, PlanShardsValidatesArguments) {
  EXPECT_EQ(PlanShards(10, 0, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanShards(10, 4, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardTest, PlanShardsPartitionsAndBalances) {
  for (size_t n : {0u, 1u, 5u, 24u, 65u}) {
    for (size_t block : {1u, 4u, 16u}) {
      for (size_t k : {1u, 2u, 4u, 7u, 100u}) {
        auto plan = PlanShards(n, block, k);
        ASSERT_TRUE(plan.ok()) << plan.status();
        EXPECT_EQ(plan->n, n);
        EXPECT_EQ(plan->block, block);
        EXPECT_EQ(plan->tile_count, TileCount(n, block));
        ASSERT_EQ(plan->shard_count(), k);

        // Contiguous, disjoint, covering — in shard order.
        size_t expect = 0;
        for (const TileRange& range : plan->ranges) {
          EXPECT_EQ(range.begin, expect);
          EXPECT_LE(range.begin, range.end);
          expect = range.end;
        }
        EXPECT_EQ(expect, plan->tile_count);

        // Balanced by cells: no shard exceeds an even split by more than
        // the largest single tile (tiles are indivisible).
        const auto tiles = TileSchedule(n, block);
        size_t total = 0, largest = 0;
        std::vector<size_t> cells(tiles.size());
        for (size_t t = 0; t < tiles.size(); ++t) {
          cells[t] = TileCellCount(n, block, tiles[t].first, tiles[t].second);
          total += cells[t];
          largest = std::max(largest, cells[t]);
        }
        for (const TileRange& range : plan->ranges) {
          size_t shard_cells = 0;
          for (size_t t = range.begin; t < range.end; ++t) {
            shard_cells += cells[t];
          }
          EXPECT_LE(shard_cells, total / k + largest + 1)
              << "n=" << n << " block=" << block << " k=" << k;
        }

        // Deterministic: re-deriving the plan gives identical cuts.
        auto again = PlanShards(n, block, k);
        ASSERT_TRUE(again.ok());
        EXPECT_EQ(again->ranges, plan->ranges);
      }
    }
  }
}

// -- Round-trip bit-identity --------------------------------------------------

TEST_F(ShardTest, ShardedBuildIsBitIdenticalForAllMeasures) {
  workload::Scenario s = Shop(61, 21);
  distance::MeasureContext context = s.Context();
  MeasureRegistry registry = MeasureRegistry::WithBuiltins();
  ThreadPool pool(2);

  for (const std::string& name : registry.Names()) {
    auto reference_measure = registry.Create(name);
    ASSERT_TRUE(reference_measure.ok());
    MatrixBuilder builder(&pool, MatrixBuilderOptions{4});
    auto reference = builder.Build(s.log, **reference_measure, context);
    ASSERT_TRUE(reference.ok()) << name << ": " << reference.status();

    for (size_t k : {1u, 2u, 4u}) {
      const std::string shard_dir =
          dir_ + "-" + name + "-" + std::to_string(k);
      fs::remove_all(shard_dir);
      auto plan = PlanShards(s.log.size(), 4, k);
      ASSERT_TRUE(plan.ok());

      // Each shard runs as its own "process": a private store handle and a
      // fresh measure instance (stateful measures must not share Prepare
      // state across workers).
      for (size_t shard = 0; shard < k; ++shard) {
        auto store = store::MatrixStore::Open(shard_dir);
        ASSERT_TRUE(store.ok()) << store.status();
        auto measure = registry.Create(name);
        ASSERT_TRUE(measure.ok());
        ShardWorker worker(&pool);
        auto manifest =
            worker.Run(name, s.log, **measure, context, *plan, shard, *store);
        ASSERT_TRUE(manifest.ok())
            << name << " shard " << shard << ": " << manifest.status();
        EXPECT_EQ(manifest->tile_begin, plan->ranges[shard].begin);
        EXPECT_EQ(manifest->tile_end, plan->ranges[shard].end);
      }

      auto store = store::MatrixStore::OpenExisting(shard_dir);
      ASSERT_TRUE(store.ok());
      ShardCoordinator coordinator;
      auto merged = coordinator.Merge(*store, name, k);
      ASSERT_TRUE(merged.ok())
          << name << " k=" << k << ": " << merged.status();
      ExpectBitIdentical(*reference, *merged);
      fs::remove_all(shard_dir);
    }
  }
}

TEST_F(ShardTest, LegacyDenseShardSetMergesBitIdentically) {
  // Shards written by a pre-sparse build — version-1 "DPEH" frames carrying
  // the full zero-padded upper triangle — must keep merging, including a
  // mixed directory where only some shards were rewritten sparsely.
  workload::Scenario s = Shop(67, 17);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  constexpr size_t kShards = 3;
  auto plan = PlanShards(s.log.size(), 4, kShards);
  ASSERT_TRUE(plan.ok());

  MatrixBuilder builder(nullptr, MatrixBuilderOptions{4});
  auto reference = builder.Build(s.log, token, context);
  ASSERT_TRUE(reference.ok());

  for (size_t dense_upto : {kShards, size_t{1}}) {  // all-dense, then mixed
    fs::remove_all(dir_);
    for (size_t shard = 0; shard < kShards; ++shard) {
      auto store = store::MatrixStore::Open(dir_);
      ASSERT_TRUE(store.ok());
      const TileRange& range = plan->ranges[shard];
      auto partial =
          builder.BuildTiles(s.log, token, context, range.begin, range.end);
      ASSERT_TRUE(partial.ok()) << partial.status();
      store::ShardManifest manifest;
      manifest.matrix = "token";
      manifest.shard_index = static_cast<uint32_t>(shard);
      manifest.shard_count = kShards;
      manifest.n = plan->n;
      manifest.block = plan->block;
      manifest.tile_begin = range.begin;
      manifest.tile_end = range.end;
      if (shard < dense_upto) {
        // The exact legacy byte layout: manifest + dense matrix, version 1.
        store::Writer w;
        store::EncodeShardManifest(manifest, &w);
        store::EncodeMatrix(*partial, &w);
        const std::string path =
            (fs::path(dir_) / ("shard-token-" + std::to_string(shard) + "of" +
                               std::to_string(kShards) + ".dpe"))
                .string();
        ASSERT_TRUE(store::WriteFramedFile(path, store::kShardMagic,
                                           w.buffer(), /*version=*/1)
                        .ok());
      } else {
        ASSERT_TRUE(store->WriteShard(manifest, *partial).ok());
      }
    }
    auto store = store::MatrixStore::OpenExisting(dir_);
    ASSERT_TRUE(store.ok());
    auto merged = ShardCoordinator().Merge(*store, "token", kShards);
    ASSERT_TRUE(merged.ok()) << merged.status();
    ExpectBitIdentical(*reference, *merged);
  }
}

TEST_F(ShardTest, SparseShardFilesAreSmallerThanDense) {
  // The satellite claim: a k-shard build's files carry the owned cells, not
  // k copies of the zero-padded upper triangle, so the per-shard file is
  // roughly dense/k instead of dense-sized.
  workload::Scenario s = Shop(71, 24);
  distance::MeasureContext context = s.Context();
  distance::TokenDistance token;
  constexpr size_t kShards = 4;
  auto plan = PlanShards(s.log.size(), 4, kShards);
  ASSERT_TRUE(plan.ok());
  for (size_t shard = 0; shard < kShards; ++shard) {
    auto store = store::MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ShardWorker worker(nullptr);
    auto manifest =
        worker.Run("token", s.log, token, context, *plan, shard, *store);
    ASSERT_TRUE(manifest.ok()) << manifest.status();
  }
  const uintmax_t dense_payload = 24 * 23 / 2 * 8;  // what v1 carried
  uintmax_t total = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    const auto path = fs::path(dir_) / ("shard-token-" +
                                        std::to_string(shard) + "of" +
                                        std::to_string(kShards) + ".dpe");
    const uintmax_t size = fs::file_size(path);
    EXPECT_LT(size, dense_payload / 2) << "shard " << shard;
    total += size;
  }
  // All k files together stay in the ballpark of ONE dense payload.
  EXPECT_LT(total, 2 * dense_payload);
}

TEST_F(ShardTest, TinyLogsShardAndMerge) {
  // n = 0 and n = 1 have no pairs; the round-trip must still work (and the
  // n = 1 schedule still has one, empty, tile).
  distance::MeasureContext context;
  distance::TokenDistance token;
  for (size_t n : {0u, 1u}) {
    workload::Scenario s = Shop(77, std::max<size_t>(n, 1));
    std::vector<sql::SelectQuery> log(s.log.begin(), s.log.begin() + n);
    auto plan = PlanShards(n, 8, 2);
    ASSERT_TRUE(plan.ok());
    const std::string shard_dir = dir_ + "-n" + std::to_string(n);
    fs::remove_all(shard_dir);
    for (size_t shard = 0; shard < 2; ++shard) {
      auto store = store::MatrixStore::Open(shard_dir);
      ASSERT_TRUE(store.ok());
      ShardWorker worker(nullptr);
      auto manifest =
          worker.Run("token", log, token, context, *plan, shard, *store);
      ASSERT_TRUE(manifest.ok()) << manifest.status();
    }
    auto store = store::MatrixStore::OpenExisting(shard_dir);
    ASSERT_TRUE(store.ok());
    auto merged = ShardCoordinator().Merge(*store, "token", 2);
    ASSERT_TRUE(merged.ok()) << merged.status();
    EXPECT_EQ(merged->size(), n);
    fs::remove_all(shard_dir);
  }
}

TEST_F(ShardTest, EngineShardRoundTripWarmsCache) {
  workload::Scenario s = Shop(83, 20);
  constexpr size_t kShards = 4;

  Engine reference(s.Context(), {.threads = 2, .block = 8});
  reference.SetLog(s.log);
  auto expect = reference.BuildMatrix("token");
  ASSERT_TRUE(expect.ok());

  Engine coordinator(s.Context(), {.threads = 2, .block = 8});
  coordinator.SetLog(s.log);
  auto plan = coordinator.PlanShards(kShards);
  ASSERT_TRUE(plan.ok());

  // Workers are separate engines — in production, separate processes that
  // share only the plan (re-derivable) and the store directory.
  for (size_t shard = 0; shard < kShards; ++shard) {
    Engine worker(s.Context(), {.threads = 2, .block = 8});
    worker.SetLog(s.log);
    ASSERT_TRUE(worker.RunShard("token", *plan, shard, dir_).ok());
  }

  auto merged = coordinator.MergeShards("token", kShards, dir_);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(*expect, *merged);

  // The merge warmed the cache: a subsequent build computes nothing.
  auto rebuilt = coordinator.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(coordinator.cache_stats().misses, 0u);
  ExpectBitIdentical(*expect, *rebuilt);

  // A typo'd measure name fails fast instead of warming the cache with
  // unreachable entries.
  EXPECT_EQ(coordinator.MergeShards("tokn", kShards, dir_).status().code(),
            StatusCode::kNotFound);
}

// -- Corruption / failure modes ----------------------------------------------

class ShardCorruptionTest : public ShardTest {
 protected:
  /// Runs a valid 3-shard "token" build over a 14-query log into dir_.
  void RunValidShards() {
    s_ = std::make_unique<workload::Scenario>(Shop(97, 14));
    auto plan = PlanShards(s_->log.size(), 4, kShards);
    ASSERT_TRUE(plan.ok());
    plan_ = *plan;
    for (size_t shard = 0; shard < kShards; ++shard) {
      auto store = store::MatrixStore::Open(dir_);
      ASSERT_TRUE(store.ok());
      ShardWorker worker(nullptr);
      auto manifest = worker.Run("token", s_->log, token_, s_->Context(),
                                 plan_, shard, *store);
      ASSERT_TRUE(manifest.ok()) << manifest.status();
    }
  }

  Result<distance::DistanceMatrix> Merge() {
    auto store = store::MatrixStore::OpenExisting(dir_);
    if (!store.ok()) return store.status();
    return ShardCoordinator().Merge(*store, "token", kShards);
  }

  /// Rewrites shard `index` with a doctored manifest; the cell payload is
  /// regenerated (zeros) to the count the doctored manifest implies, so the
  /// file itself is well-formed and only the coordinator's cross-manifest
  /// validation can catch it.
  void RewriteShard(uint32_t index, uint64_t tile_begin, uint64_t tile_end,
                    uint64_t n = 0) {
    auto store = store::MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    auto shard = store->ReadShard("token", index, kShards);
    ASSERT_TRUE(shard.ok()) << shard.status();
    shard->manifest.tile_begin = tile_begin;
    shard->manifest.tile_end = tile_end;
    if (n != 0) shard->manifest.n = n;
    auto count = store::ShardCellCount(shard->manifest);
    ASSERT_TRUE(count.ok()) << count.status();
    std::vector<double> cells(*count, 0.0);
    ASSERT_TRUE(store->WriteShardCells(shard->manifest, cells).ok());
  }

  static constexpr size_t kShards = 3;
  std::unique_ptr<workload::Scenario> s_;
  ShardPlan plan_;
  distance::TokenDistance token_;
};

TEST_F(ShardCorruptionTest, MissingShardIsNotFound) {
  RunValidShards();
  fs::remove(fs::path(dir_) / "shard-token-1of3.dpe");
  auto merged = Merge();
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kNotFound);
}

TEST_F(ShardCorruptionTest, OverlappingTileRangesAreInvalidArgument) {
  RunValidShards();
  // Shard 1 reaches back into shard 0's range.
  ASSERT_GT(plan_.ranges[1].begin, 0u);
  RewriteShard(1, plan_.ranges[1].begin - 1, plan_.ranges[1].end);
  auto merged = Merge();
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(merged.status().message().find("overlap"), std::string::npos)
      << merged.status();
}

TEST_F(ShardCorruptionTest, TileGapIsInvalidArgument) {
  RunValidShards();
  // Shard 1 starts one tile late: a gap no shard covers.
  ASSERT_LT(plan_.ranges[1].begin + 1, plan_.ranges[1].end);
  RewriteShard(1, plan_.ranges[1].begin + 1, plan_.ranges[1].end);
  auto merged = Merge();
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(merged.status().message().find("covered by no shard"),
            std::string::npos)
      << merged.status();
}

TEST_F(ShardCorruptionTest, RangeBeyondScheduleIsInvalidArgument) {
  RunValidShards();
  RewriteShard(2, plan_.ranges[2].begin, plan_.tile_count + 5);
  auto merged = Merge();
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardCorruptionTest, WrongNManifestIsInvalidArgument) {
  RunValidShards();
  // Shard 2 claims a different log size than its siblings.
  RewriteShard(2, plan_.ranges[2].begin, plan_.ranges[2].end, /*n=*/20);
  auto merged = Merge();
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(merged.status().message().find("declares n"), std::string::npos)
      << merged.status();
}

TEST_F(ShardCorruptionTest, ConsistentButForeignShardSetIsRejectedByEngine) {
  // All manifests agree with each other but belong to a different log: the
  // engine-level merge must reject the size mismatch.
  RunValidShards();
  Engine engine(s_->Context());
  engine.SetLog({s_->log.begin(), s_->log.begin() + 9});  // 9 != 14
  auto merged = engine.MergeShards("token", kShards, dir_);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);

  // The empty log (n = 0, which Merge's expected_n treats as "don't
  // check") must be rejected too, not silently merged and cached.
  Engine empty_engine(s_->Context());
  auto empty_merge = empty_engine.MergeShards("token", kShards, dir_);
  ASSERT_FALSE(empty_merge.ok());
  EXPECT_EQ(empty_merge.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(empty_engine.cache_size(), 0u);
}

TEST_F(ShardCorruptionTest, ByteFlippedShardFileIsParseError) {
  RunValidShards();
  const std::string path = (fs::path(dir_) / "shard-token-0of3.dpe").string();
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x08);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  auto merged = Merge();
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kParseError);
}

TEST_F(ShardCorruptionTest, WorkerRejectsForeignPlanAndBadIndex) {
  workload::Scenario s = Shop(101, 10);
  auto plan = PlanShards(12, 4, 2);  // plan for 12 queries, log holds 10
  ASSERT_TRUE(plan.ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ShardWorker worker(nullptr);
  distance::TokenDistance token;
  auto run = worker.Run("token", s.log, token, s.Context(), *plan, 0, *store);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);

  auto good_plan = PlanShards(10, 4, 2);
  ASSERT_TRUE(good_plan.ok());
  auto bad_index =
      worker.Run("token", s.log, token, s.Context(), *good_plan, 2, *store);
  ASSERT_FALSE(bad_index.ok());
  EXPECT_EQ(bad_index.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpe::engine
