#include <gtest/gtest.h>

#include <set>

#include "db/executor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/scenarios.h"

namespace dpe::workload {
namespace {

TEST(SchemaGenTest, ShopSpecShape) {
  WorkloadSpec spec = MakeShopSpec();
  EXPECT_EQ(spec.relations.size(), 3u);
  EXPECT_NE(spec.Find("customers"), nullptr);
  EXPECT_NE(spec.Find("orders"), nullptr);
  EXPECT_NE(spec.Find("products"), nullptr);
  EXPECT_EQ(spec.Find("nope"), nullptr);
  EXPECT_EQ(spec.joins.size(), 2u);
  const RelationSpec* orders = spec.Find("orders");
  EXPECT_NE(orders->Find("quantity"), nullptr);
  EXPECT_TRUE(orders->Find("quantity")->aggregatable);
}

TEST(SchemaGenTest, DomainsCoverAllAttributes) {
  WorkloadSpec spec = MakeShopSpec();
  db::DomainRegistry domains = spec.Domains();
  for (const auto& rel : spec.relations) {
    for (const auto& attr : rel.attrs) {
      EXPECT_TRUE(domains.Has(rel.name + "." + attr.name));
    }
  }
}

TEST(DataGenTest, PopulatesAllRelationsDeterministically) {
  WorkloadSpec spec = MakeShopSpec();
  DataGenOptions opt;
  opt.seed = 7;
  opt.rows_per_relation = 50;
  auto db1 = GenerateData(spec, opt).value();
  auto db2 = GenerateData(spec, opt).value();
  for (const auto& rel : spec.relations) {
    auto t1 = db1.GetTable(rel.name).value();
    auto t2 = db2.GetTable(rel.name).value();
    EXPECT_EQ(t1->row_count(), 50u);
    EXPECT_EQ(t1->RowKeySet(), t2->RowKeySet());
  }
}

TEST(DataGenTest, ValuesRespectDomains) {
  WorkloadSpec spec = MakeShopSpec();
  DataGenOptions opt;
  opt.rows_per_relation = 100;
  auto db = GenerateData(spec, opt).value();
  const RelationSpec* customers = spec.Find("customers");
  auto table = db.GetTable("customers").value();
  auto age_idx = table->schema().Find("age").value();
  const AttrSpec* age = customers->Find("age");
  for (const auto& row : table->rows()) {
    EXPECT_GE(row[age_idx].int_value(), age->min_i);
    EXPECT_LE(row[age_idx].int_value(), age->max_i);
  }
}

TEST(LogGenTest, GeneratesRequestedCountDeterministically) {
  WorkloadSpec spec = MakeShopSpec();
  LogGenOptions opt;
  opt.seed = 11;
  opt.count = 60;
  auto log1 = GenerateLog(spec, opt).value();
  auto log2 = GenerateLog(spec, opt).value();
  ASSERT_EQ(log1.size(), 60u);
  for (size_t i = 0; i < log1.size(); ++i) {
    EXPECT_EQ(sql::ToSql(log1[i]), sql::ToSql(log2[i]));
  }
}

TEST(LogGenTest, QueriesCoverTemplateVariety) {
  WorkloadSpec spec = MakeShopSpec();
  LogGenOptions opt;
  opt.seed = 13;
  opt.count = 150;
  auto log = GenerateLog(spec, opt).value();
  bool has_where = false, has_join = false, has_agg = false, has_group = false,
       has_in = false, has_between = false, has_not = false, has_limit = false;
  for (const auto& q : log) {
    std::string text = sql::ToSql(q);
    has_where |= q.where != nullptr;
    has_join |= !q.joins.empty();
    has_group |= !q.group_by.empty();
    has_limit |= q.limit.has_value();
    has_in |= text.find(" IN (") != std::string::npos;
    has_between |= text.find(" BETWEEN ") != std::string::npos;
    has_not |= text.find("NOT ") != std::string::npos;
    for (const auto& item : q.items) has_agg |= item.agg != sql::AggFn::kNone;
  }
  EXPECT_TRUE(has_where);
  EXPECT_TRUE(has_join);
  EXPECT_TRUE(has_agg);
  EXPECT_TRUE(has_group);
  EXPECT_TRUE(has_in);
  EXPECT_TRUE(has_between);
  EXPECT_TRUE(has_not);
  EXPECT_TRUE(has_limit);
}

TEST(LogGenTest, TemplateTogglesWork) {
  WorkloadSpec spec = MakeShopSpec();
  LogGenOptions opt;
  opt.count = 80;
  opt.include_joins = false;
  opt.include_aggregates = false;
  auto log = GenerateLog(spec, opt).value();
  for (const auto& q : log) {
    EXPECT_TRUE(q.joins.empty());
    for (const auto& item : q.items) EXPECT_EQ(item.agg, sql::AggFn::kNone);
  }
}

TEST(LogGenTest, ConstantsComeFromSmallPools) {
  WorkloadSpec spec = MakeShopSpec();
  LogGenOptions opt;
  opt.seed = 17;
  opt.count = 200;
  opt.constant_pool_size = 5;
  auto log = GenerateLog(spec, opt).value();
  // Count distinct int constants in point queries on customers.cid: bounded
  // by the pool size.
  std::set<int64_t> cids;
  for (const auto& q : log) {
    if (q.where && q.where->kind == sql::Predicate::Kind::kCompare &&
        q.from.name == "customers" && q.where->column.name == "cid" &&
        q.where->literal.kind() == sql::Literal::Kind::kInt) {
      cids.insert(q.where->literal.int_value());
    }
  }
  EXPECT_LE(cids.size(), 5u);
}

TEST(ScenarioTest, ShopScenarioQueriesExecute) {
  ScenarioOptions opt;
  opt.seed = 21;
  opt.rows_per_relation = 40;
  opt.log_size = 50;
  auto s = MakeShopScenario(opt).value();
  for (const auto& q : s.log) {
    auto r = db::Execute(s.database, q);
    EXPECT_TRUE(r.ok()) << sql::ToSql(q) << " -> " << r.status();
  }
}

TEST(ScenarioTest, SkyServerScenarioQueriesExecute) {
  ScenarioOptions opt;
  opt.seed = 22;
  opt.rows_per_relation = 40;
  opt.log_size = 40;
  auto s = MakeSkyServerScenario(opt).value();
  EXPECT_EQ(s.spec.name, "skyserver");
  for (const auto& q : s.log) {
    auto r = db::Execute(s.database, q);
    EXPECT_TRUE(r.ok()) << sql::ToSql(q) << " -> " << r.status();
  }
}

TEST(ScenarioTest, GeneratedQueriesReparse) {
  ScenarioOptions opt;
  opt.log_size = 60;
  auto s = MakeShopScenario(opt).value();
  for (const auto& q : s.log) {
    auto round = sql::Parse(sql::ToSql(q));
    ASSERT_TRUE(round.ok());
    EXPECT_TRUE(q.Equals(*round)) << sql::ToSql(q);
  }
}

}  // namespace
}  // namespace dpe::workload
