#include "cryptdb/onion.h"

#include <gtest/gtest.h>

namespace dpe::cryptdb {
namespace {

using db::ColumnType;
using db::Value;

class OnionTest : public ::testing::Test {
 protected:
  static OnionCrypto& Crypto() {
    static crypto::KeyManager keys("onion-test-master");
    static OnionCrypto instance = [] {
      OnionLayout layout;
      layout.columns["r.a"] = {true, true, true};
      layout.columns["r.s"] = {true, false, false};
      layout.columns["r.j1"] = {true, false, false};
      layout.columns["s.j2"] = {true, false, false};
      layout.join_group_of["r.j1"] = "g";
      layout.join_group_of["s.j2"] = "g";
      OnionCrypto::Options options;
      options.paillier_bits = 256;
      options.ope_range_bits = 80;
      return OnionCrypto::Create(keys, layout, options,
                                 crypto::Csprng::FromSeed("onion"))
          .value();
    }();
    return instance;
  }
};

TEST_F(OnionTest, NameEncryptionIsDeterministicIdentifierSafe) {
  std::string e1 = Crypto().EncryptRelName("orders");
  std::string e2 = Crypto().EncryptRelName("orders");
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(e1[0], 'e');
  for (char c : e1.substr(1)) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
  }
  EXPECT_EQ(Crypto().DecryptRelName(e1).value(), "orders");
}

TEST_F(OnionTest, RelAndAttrNamespacesAreSeparate) {
  EXPECT_NE(Crypto().EncryptRelName("x"), Crypto().EncryptAttrName("x"));
  EXPECT_EQ(Crypto().DecryptAttrName(Crypto().EncryptAttrName("cid")).value(),
            "cid");
}

TEST_F(OnionTest, EqOnionDeterministicPerColumn) {
  Value v = Value::Int(42);
  auto c1 = Crypto().EncryptEq("r.a", v).value();
  auto c2 = Crypto().EncryptEq("r.a", v).value();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1.string_value()[0], 'e');
  // Different column, same value -> different ciphertext (per-column keys).
  auto c3 = Crypto().EncryptEq("r.s", v).value();
  EXPECT_NE(c1, c3);
}

TEST_F(OnionTest, EqOnionDecrypts) {
  for (const Value& v : {Value::Int(-5), Value::Double(2.5), Value::String("x")}) {
    auto ct = Crypto().EncryptEq("r.a", v).value();
    auto type = v.is_int() ? ColumnType::kInt
                           : (v.is_double() ? ColumnType::kDouble
                                            : ColumnType::kString);
    EXPECT_EQ(Crypto().DecryptCell("r.a", type, ct).value(), v);
  }
}

TEST_F(OnionTest, JoinGroupSharesEqKeys) {
  Value v = Value::Int(7);
  auto c1 = Crypto().EncryptEq("r.j1", v).value();
  auto c2 = Crypto().EncryptEq("s.j2", v).value();
  EXPECT_EQ(c1, c2);  // same join group -> joinable
}

TEST_F(OnionTest, OrdOnionPreservesOrderAsStrings) {
  auto lo = Crypto().EncryptOrd("r.a", Value::Int(-100)).value();
  auto mid = Crypto().EncryptOrd("r.a", Value::Int(3)).value();
  auto hi = Crypto().EncryptOrd("r.a", Value::Int(4000)).value();
  EXPECT_LT(lo.string_value(), mid.string_value());
  EXPECT_LT(mid.string_value(), hi.string_value());
  EXPECT_EQ(Crypto().DecryptCell("r.a", ColumnType::kInt, mid).value(),
            Value::Int(3));
}

TEST_F(OnionTest, OrdOnionDoubles) {
  auto a = Crypto().EncryptOrd("r.a", Value::Double(-2.5)).value();
  auto b = Crypto().EncryptOrd("r.a", Value::Double(2.5)).value();
  EXPECT_LT(a.string_value(), b.string_value());
  EXPECT_EQ(Crypto().DecryptCell("r.a", ColumnType::kDouble, b).value(),
            Value::Double(2.5));
}

TEST_F(OnionTest, OrdOnionRejectsStrings) {
  EXPECT_FALSE(Crypto().EncryptOrd("r.s", Value::String("x")).ok());
}

TEST_F(OnionTest, AddOnionPaillierSum) {
  auto c1 = Crypto().EncryptAdd("r.a", Value::Int(30)).value();
  auto c2 = Crypto().EncryptAdd("r.a", Value::Int(12)).value();
  // Fold manually via the public key.
  auto b1 = crypto::Bigint::FromBytes(
      HexDecode(std::string_view(c1.string_value()).substr(1)).value());
  auto b2 = crypto::Bigint::FromBytes(
      HexDecode(std::string_view(c2.string_value()).substr(1)).value());
  auto sum = crypto::Paillier::Add(Crypto().paillier_pub(), b1, b2);
  Value sum_cell = Value::String("h" + HexEncode(sum.ToBytes()));
  EXPECT_EQ(Crypto().DecryptPaillierSum(sum_cell).value(), 42);
}

TEST_F(OnionTest, AddOnionRejectsNonInt) {
  EXPECT_FALSE(Crypto().EncryptAdd("r.a", Value::Double(1.5)).ok());
  EXPECT_FALSE(Crypto().EncryptAdd("r.a", Value::String("x")).ok());
}

TEST_F(OnionTest, RndOnionIsProbabilisticButDecryptable) {
  auto c1 = Crypto().EncryptRnd("r.s", Value::String("secret")).value();
  auto c2 = Crypto().EncryptRnd("r.s", Value::String("secret")).value();
  EXPECT_NE(c1, c2);
  EXPECT_EQ(Crypto().DecryptCell("r.s", ColumnType::kString, c1).value(),
            Value::String("secret"));
  EXPECT_EQ(Crypto().DecryptCell("r.s", ColumnType::kString, c2).value(),
            Value::String("secret"));
}

TEST_F(OnionTest, NullCellsPassThrough) {
  EXPECT_TRUE(Crypto().EncryptEq("r.a", Value::Null()).value().is_null());
  EXPECT_TRUE(Crypto().EncryptOrd("r.a", Value::Null()).value().is_null());
  EXPECT_TRUE(
      Crypto().DecryptCell("r.a", ColumnType::kInt, Value::Null()).value().is_null());
}

TEST_F(OnionTest, DecryptRejectsGarbage) {
  EXPECT_FALSE(Crypto().DecryptCell("r.a", ColumnType::kInt, Value::Int(5)).ok());
  EXPECT_FALSE(
      Crypto().DecryptCell("r.a", ColumnType::kInt, Value::String("zzz")).ok());
  EXPECT_FALSE(
      Crypto().DecryptCell("r.a", ColumnType::kInt, Value::String("")).ok());
}

TEST(OrderPreservingU64Test, ValueDispatch) {
  EXPECT_LT(OrderPreservingU64(Value::Int(-3)).value(),
            OrderPreservingU64(Value::Int(2)).value());
  EXPECT_LT(OrderPreservingU64(Value::Double(-0.5)).value(),
            OrderPreservingU64(Value::Double(0.5)).value());
  EXPECT_FALSE(OrderPreservingU64(Value::String("x")).ok());
  EXPECT_EQ(ValueFromOrderPreservingU64(
                OrderPreservingU64(Value::Int(77)).value(), ColumnType::kInt)
                .value(),
            Value::Int(77));
}

}  // namespace
}  // namespace dpe::cryptdb
