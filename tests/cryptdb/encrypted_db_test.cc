#include "cryptdb/encrypted_db.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace dpe::cryptdb {
namespace {

using db::ColumnType;
using db::Value;

/// End-to-end CryptDB flow on the emp/dept database of the executor tests.
class CryptDbTest : public ::testing::Test {
 protected:
  static db::Database MakePlain() {
    db::Database plain;
    db::Table emp("emp", db::TableSchema({{"id", ColumnType::kInt},
                                          {"dept", ColumnType::kString},
                                          {"salary", ColumnType::kInt},
                                          {"rating", ColumnType::kDouble}}));
    auto add = [&](int id, const char* dept, int salary, double rating) {
      ASSERT_TRUE(emp.Append({Value::Int(id), Value::String(dept),
                              Value::Int(salary), Value::Double(rating)})
                      .ok());
    };
    add(1, "eng", 100, 4.5);
    add(2, "eng", 120, 3.5);
    add(3, "sales", 90, 4.0);
    add(4, "sales", 110, 2.5);
    add(5, "hr", 80, 5.0);
    EXPECT_TRUE(plain.CreateTable(std::move(emp)).ok());
    db::Table dept("dept", db::TableSchema({{"name", ColumnType::kString},
                                            {"budget", ColumnType::kInt}}));
    EXPECT_TRUE(dept.Append({Value::String("eng"), Value::Int(1000)}).ok());
    EXPECT_TRUE(dept.Append({Value::String("sales"), Value::Int(500)}).ok());
    EXPECT_TRUE(plain.CreateTable(std::move(dept)).ok());
    return plain;
  }

  static CryptDb& Instance() {
    static crypto::KeyManager keys("cryptdb-test-master");
    static db::Database plain = MakePlain();
    static CryptDb cdb = [] {
      OnionLayout layout;
      layout.columns["emp.id"] = {true, true, false};
      layout.columns["emp.dept"] = {true, false, false};
      layout.columns["emp.salary"] = {true, true, true};
      layout.columns["emp.rating"] = {true, true, false};
      layout.columns["dept.name"] = {true, false, false};
      layout.columns["dept.budget"] = {true, true, false};
      layout.join_group_of["emp.dept"] = "g";
      layout.join_group_of["dept.name"] = "g";
      CryptDb::Options options;
      options.crypto.paillier_bits = 256;
      return CryptDb::Build(plain, layout, keys, options,
                            crypto::Csprng::FromSeed("cdb"))
          .value();
    }();
    return cdb;
  }

  static const db::Database& Plain() {
    static db::Database plain = MakePlain();
    return plain;
  }

  /// Runs plaintext and encrypted flavors and compares decrypted results.
  void ExpectSameResults(const std::string& text) {
    auto q = sql::Parse(text).value();
    auto plain_result = db::Execute(Plain(), q);
    ASSERT_TRUE(plain_result.ok()) << text;
    auto enc_q = Instance().Rewrite(q);
    ASSERT_TRUE(enc_q.ok()) << text << " -> " << enc_q.status();
    auto enc_result = Instance().ExecuteEncrypted(*enc_q);
    ASSERT_TRUE(enc_result.ok()) << sql::ToSql(*enc_q) << " -> "
                                 << enc_result.status();
    auto decrypted = Instance().DecryptResult(q, *enc_result);
    ASSERT_TRUE(decrypted.ok()) << text << " -> " << decrypted.status();
    EXPECT_EQ(decrypted->TupleKeySet(), plain_result->TupleKeySet()) << text;
    EXPECT_EQ(decrypted->rows.size(), plain_result->rows.size()) << text;
  }
};

TEST_F(CryptDbTest, EncryptedSchemaHasOnionColumnsOnly) {
  const db::Database& enc = Instance().encrypted();
  EXPECT_EQ(enc.table_count(), 2u);
  std::string enc_emp = Instance().onion_crypto().EncryptRelName("emp");
  auto table = enc.GetTable(enc_emp).value();
  // id: eq+ord, dept: eq, salary: eq+ord+add, rating: eq+ord -> 8 columns.
  EXPECT_EQ(table->schema().size(), 8u);
  EXPECT_EQ(table->row_count(), 5u);
  for (const auto& col : table->schema().columns()) {
    EXPECT_EQ(col.type, ColumnType::kString);
  }
}

TEST_F(CryptDbTest, PointQuery) {
  ExpectSameResults("SELECT id FROM emp WHERE dept = 'eng'");
}

TEST_F(CryptDbTest, RangeQueriesViaOpe) {
  ExpectSameResults("SELECT id FROM emp WHERE salary > 100");
  ExpectSameResults("SELECT id FROM emp WHERE salary BETWEEN 90 AND 110");
  ExpectSameResults("SELECT id, dept FROM emp WHERE rating < 4.0");
  ExpectSameResults("SELECT id FROM emp WHERE rating >= 4");
}

TEST_F(CryptDbTest, BooleanCombinations) {
  ExpectSameResults(
      "SELECT id FROM emp WHERE dept = 'eng' AND salary > 110");
  ExpectSameResults("SELECT id FROM emp WHERE dept = 'hr' OR salary = 90");
  ExpectSameResults("SELECT id FROM emp WHERE NOT dept = 'eng'");
  ExpectSameResults("SELECT id FROM emp WHERE id IN (1, 3, 5)");
}

TEST_F(CryptDbTest, ProjectionAndStar) {
  ExpectSameResults("SELECT * FROM emp WHERE salary >= 100");
  ExpectSameResults("SELECT dept, rating FROM emp");
  ExpectSameResults("SELECT DISTINCT dept FROM emp");
}

TEST_F(CryptDbTest, OrderByLimit) {
  ExpectSameResults("SELECT id FROM emp ORDER BY salary DESC LIMIT 2");
  ExpectSameResults("SELECT id, salary FROM emp ORDER BY rating LIMIT 3");
}

TEST_F(CryptDbTest, PaillierSum) {
  ExpectSameResults("SELECT SUM(salary) FROM emp");
  ExpectSameResults("SELECT SUM(salary) FROM emp WHERE dept = 'eng'");
}

TEST_F(CryptDbTest, PaillierAvgAndCount) {
  ExpectSameResults("SELECT AVG(salary) FROM emp");
  ExpectSameResults("SELECT COUNT(*) FROM emp WHERE salary > 90");
}

TEST_F(CryptDbTest, MinMaxViaOrdOnion) {
  ExpectSameResults("SELECT MIN(salary), MAX(salary) FROM emp");
  ExpectSameResults("SELECT MAX(rating) FROM emp WHERE dept = 'sales'");
}

TEST_F(CryptDbTest, GroupByAggregates) {
  ExpectSameResults("SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  ExpectSameResults("SELECT dept, SUM(salary) FROM emp GROUP BY dept");
  ExpectSameResults(
      "SELECT dept, AVG(salary) FROM emp WHERE salary >= 90 GROUP BY dept");
}

TEST_F(CryptDbTest, JoinThroughSharedJoinGroupKeys) {
  ExpectSameResults(
      "SELECT emp.id, dept.budget FROM emp JOIN dept ON emp.dept = dept.name");
  ExpectSameResults(
      "SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.name "
      "WHERE dept.budget > 600");
}

TEST_F(CryptDbTest, AggregateOverEmptySelection) {
  ExpectSameResults("SELECT SUM(salary), COUNT(*) FROM emp WHERE salary > 99999");
}

TEST_F(CryptDbTest, ProviderSeesNoPlaintext) {
  // Every cell of the encrypted database is a tagged ciphertext string; no
  // plaintext value from the original database appears.
  const db::Database& enc = Instance().encrypted();
  for (const std::string& name : enc.TableNames()) {
    auto table = enc.GetTable(name).value();
    for (const auto& row : table->rows()) {
      for (const auto& cell : row) {
        if (cell.is_null()) continue;
        ASSERT_TRUE(cell.is_string());
        char tag = cell.string_value()[0];
        EXPECT_TRUE(tag == 'e' || tag == 'o' || tag == 'h' || tag == 'p');
        EXPECT_EQ(cell.string_value().find("eng"), std::string::npos);
      }
    }
  }
}

TEST_F(CryptDbTest, EncryptDomains) {
  db::DomainRegistry plain_domains;
  plain_domains.Set("emp.salary", {Value::Int(0), Value::Int(1000)});
  auto enc_domains = Instance().EncryptDomains(plain_domains).value();
  std::string enc_key = Instance().EncryptColumnKey("emp.salary");
  ASSERT_TRUE(enc_domains.Has(enc_key));
  auto dom = enc_domains.Get(enc_key).value();
  // OPE-encrypted bounds preserve order.
  EXPECT_LT(dom.min.string_value(), dom.max.string_value());
}

TEST_F(CryptDbTest, StarWithJoinExpandsBothRelations) {
  ExpectSameResults(
      "SELECT * FROM emp JOIN dept ON emp.dept = dept.name "
      "WHERE dept.budget >= 500");
}

TEST_F(CryptDbTest, StarWithPredicateAndDistinct) {
  ExpectSameResults("SELECT DISTINCT * FROM dept");
}

TEST_F(CryptDbTest, RewrittenStarParsesAndHasExplicitColumns) {
  auto q = sql::Parse("SELECT * FROM emp").value();
  auto enc_q = Instance().Rewrite(q).value();
  // Star expanded: 4 plaintext columns -> 4 explicit onion refs.
  ASSERT_EQ(enc_q.items.size(), 4u);
  for (const auto& item : enc_q.items) {
    EXPECT_FALSE(item.star);
    EXPECT_TRUE(item.column.name.ends_with(kEqSuffix));
  }
  EXPECT_TRUE(sql::Parse(sql::ToSql(enc_q)).ok());
}

TEST_F(CryptDbTest, SharedValueKeysLinkEqualValuesAcrossColumns) {
  // The result scheme's global JOIN usage mode (DESIGN.md finding 2): with
  // shared_value_keys, equal typed values in different columns encrypt
  // identically, so cross-attribute plaintext tuple collisions survive.
  OnionLayout layout;
  layout.columns["a.x"] = {true, false, false};
  layout.columns["b.y"] = {true, false, false};
  layout.shared_value_keys = true;
  crypto::KeyManager keys("shared-keys-test");
  OnionCrypto::Options copts;
  copts.paillier_bits = 256;
  auto crypto =
      OnionCrypto::Create(keys, layout, copts, crypto::Csprng::FromSeed("sv"))
          .value();
  EXPECT_EQ(crypto.EncryptEq("a.x", Value::Int(17)).value(),
            crypto.EncryptEq("b.y", Value::Int(17)).value());
  EXPECT_EQ(crypto.EncryptOrd("a.x", Value::Int(17)).value(),
            crypto.EncryptOrd("b.y", Value::Int(17)).value());
  // Typed ORD tags keep int/double images disjoint even under shared keys.
  auto int_cell = crypto.EncryptOrd("a.x", Value::Int(17)).value();
  auto dbl_cell = crypto.EncryptOrd("a.x", Value::Double(17.0)).value();
  EXPECT_NE(int_cell, dbl_cell);
  EXPECT_EQ(int_cell.string_value().substr(0, 2), "oi");
  EXPECT_EQ(dbl_cell.string_value().substr(0, 2), "od");
}

TEST_F(CryptDbTest, DecryptResultValidatesArity) {
  auto q = sql::Parse("SELECT id, dept FROM emp").value();
  db::ResultTable bogus;
  bogus.rows.push_back({Value::String("e00")});  // arity 1, plan expects 2
  EXPECT_FALSE(Instance().DecryptResult(q, bogus).ok());
}

}  // namespace
}  // namespace dpe::cryptdb
