#include "cryptdb/rewriter.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace dpe::cryptdb {
namespace {

using db::ColumnType;

class RewriterTest : public ::testing::Test {
 protected:
  static OnionCrypto& Crypto() {
    static crypto::KeyManager keys("rewriter-test-master");
    static OnionCrypto instance = [] {
      OnionLayout layout;
      layout.columns["emp.id"] = {true, true, false};
      layout.columns["emp.dept"] = {true, false, false};
      layout.columns["emp.salary"] = {true, true, true};
      layout.columns["emp.note"] = {false, false, false};  // RND only
      layout.columns["dept.name"] = {true, false, false};
      layout.columns["dept.budget"] = {true, true, false};
      layout.join_group_of["emp.dept"] = "g";
      layout.join_group_of["dept.name"] = "g";
      OnionCrypto::Options options;
      options.paillier_bits = 256;
      return OnionCrypto::Create(keys, layout, options,
                                 crypto::Csprng::FromSeed("rw"))
          .value();
    }();
    return instance;
  }

  static const SchemaMap& Schemas() {
    static SchemaMap schemas = [] {
      SchemaMap s;
      s["emp"] = db::TableSchema({{"id", ColumnType::kInt},
                                  {"dept", ColumnType::kString},
                                  {"salary", ColumnType::kInt},
                                  {"note", ColumnType::kString}});
      s["dept"] = db::TableSchema(
          {{"name", ColumnType::kString}, {"budget", ColumnType::kInt}});
      return s;
    }();
    return schemas;
  }

  sql::SelectQuery Rewrite(const std::string& text) {
    QueryRewriter rewriter(&Crypto(), &Schemas());
    auto q = sql::Parse(text).value();
    auto out = rewriter.Rewrite(q);
    EXPECT_TRUE(out.ok()) << text << " -> " << out.status();
    return std::move(out).value();
  }
};

TEST_F(RewriterTest, NamesAreEncryptedAndSuffixed) {
  auto q = Rewrite("SELECT id FROM emp WHERE dept = 'eng'");
  EXPECT_EQ(q.from.name, Crypto().EncryptRelName("emp"));
  ASSERT_EQ(q.items.size(), 1u);
  EXPECT_EQ(q.items[0].column.name,
            Crypto().EncryptAttrName("id") + std::string(kEqSuffix));
}

TEST_F(RewriterTest, EqualityConstantsUseEqOnion) {
  auto q = Rewrite("SELECT id FROM emp WHERE dept = 'eng'");
  ASSERT_NE(q.where, nullptr);
  const std::string& ct = q.where->literal.string_value();
  EXPECT_EQ(ct[0], 'e');
  // The ciphertext must equal the onion encryption of the cell value.
  auto expected = Crypto().EncryptEq("emp.dept", db::Value::String("eng")).value();
  EXPECT_EQ(ct, expected.string_value());
}

TEST_F(RewriterTest, RangeConstantsUseOrdOnion) {
  auto q = Rewrite("SELECT id FROM emp WHERE salary > 100");
  EXPECT_TRUE(q.where->column.name.ends_with(kOrdSuffix));
  EXPECT_EQ(q.where->literal.string_value()[0], 'o');
}

TEST_F(RewriterTest, BetweenAndInRewrite) {
  auto q1 = Rewrite("SELECT id FROM emp WHERE salary BETWEEN 50 AND 100");
  EXPECT_TRUE(q1.where->column.name.ends_with(kOrdSuffix));
  EXPECT_LT(q1.where->low.string_value(), q1.where->high.string_value());
  auto q2 = Rewrite("SELECT id FROM emp WHERE id IN (1, 2, 3)");
  EXPECT_TRUE(q2.where->column.name.ends_with(kEqSuffix));
  EXPECT_EQ(q2.where->in_list.size(), 3u);
}

TEST_F(RewriterTest, IntConstantCoercedForDoubleColumnEquality) {
  SchemaMap schemas = Schemas();
  schemas["m"] = db::TableSchema({{"x", ColumnType::kDouble}});
  OnionLayout layout = Crypto().layout();
  // m.x not in the layout: defaults to RND-only but EncryptEq still derives
  // a column key, which is all this test needs.
  QueryRewriter rewriter(&Crypto(), &schemas);
  auto q = sql::Parse("SELECT x FROM m WHERE x = 5").value();
  auto out = rewriter.Rewrite(q).value();
  auto expected = Crypto().EncryptEq("m.x", db::Value::Double(5.0)).value();
  EXPECT_EQ(out.where->literal.string_value(), expected.string_value());
}

TEST_F(RewriterTest, AggregatesPickTheirOnions) {
  auto q = Rewrite("SELECT SUM(salary), MIN(salary), COUNT(*) FROM emp");
  EXPECT_TRUE(q.items[0].column.name.ends_with(kAddSuffix));
  EXPECT_TRUE(q.items[1].column.name.ends_with(kOrdSuffix));
  EXPECT_TRUE(q.items[2].star);
}

TEST_F(RewriterTest, RndOnlyProjectionUsesRndColumn) {
  auto q = Rewrite("SELECT note FROM emp");
  EXPECT_TRUE(q.items[0].column.name.ends_with(kRndSuffix));
}

TEST_F(RewriterTest, GroupByEqOrderByOrd) {
  auto q = Rewrite(
      "SELECT dept, COUNT(*) FROM emp WHERE salary > 1 GROUP BY dept");
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_TRUE(q.group_by[0].name.ends_with(kEqSuffix));
  auto q2 = Rewrite("SELECT id FROM emp ORDER BY salary DESC LIMIT 3");
  EXPECT_TRUE(q2.order_by[0].column.name.ends_with(kOrdSuffix));
  EXPECT_EQ(q2.limit.value(), 3);
}

TEST_F(RewriterTest, JoinRewritesBothSidesToEq) {
  auto q = Rewrite(
      "SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.name "
      "WHERE dept.budget > 10");
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_TRUE(q.joins[0].left.name.ends_with(kEqSuffix));
  EXPECT_TRUE(q.joins[0].right.name.ends_with(kEqSuffix));
  EXPECT_EQ(q.joins[0].left.relation, Crypto().EncryptRelName("emp"));
}

TEST_F(RewriterTest, BooleanStructurePreserved) {
  auto q = Rewrite(
      "SELECT id FROM emp WHERE NOT (dept = 'eng' OR salary > 100) AND id = 1");
  ASSERT_EQ(q.where->kind, sql::Predicate::Kind::kAnd);
  EXPECT_EQ(q.where->children[0]->kind, sql::Predicate::Kind::kNot);
  EXPECT_EQ(q.where->children[0]->children[0]->kind, sql::Predicate::Kind::kOr);
}

TEST_F(RewriterTest, EncryptedQueryStillParses) {
  auto q = Rewrite("SELECT id FROM emp WHERE dept = 'eng' AND salary >= 50");
  auto text = sql::ToSql(q);
  auto reparsed = sql::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_TRUE(q.Equals(*reparsed));
}

TEST_F(RewriterTest, TypeErrorsSurface) {
  QueryRewriter rewriter(&Crypto(), &Schemas());
  // String constant for an int column.
  auto q1 = sql::Parse("SELECT id FROM emp WHERE id = 'x'").value();
  EXPECT_FALSE(rewriter.Rewrite(q1).ok());
  // Range predicate over a string column (no ORD onion for strings).
  auto q2 = sql::Parse("SELECT id FROM emp WHERE dept > 'a'").value();
  EXPECT_FALSE(rewriter.Rewrite(q2).ok());
}

TEST_F(RewriterTest, UnknownColumnFails) {
  QueryRewriter rewriter(&Crypto(), &Schemas());
  auto q = sql::Parse("SELECT missing FROM emp WHERE missing = 1").value();
  EXPECT_FALSE(rewriter.Rewrite(q).ok());
}

TEST(CoerceLiteralTest, Rules) {
  EXPECT_EQ(CoerceLiteral(ColumnType::kDouble, sql::Literal::Int(5)).value(),
            sql::Literal::Double(5.0));
  EXPECT_EQ(CoerceLiteral(ColumnType::kInt, sql::Literal::Int(5)).value(),
            sql::Literal::Int(5));
  EXPECT_FALSE(CoerceLiteral(ColumnType::kInt, sql::Literal::Double(5.5)).ok());
  EXPECT_FALSE(CoerceLiteral(ColumnType::kString, sql::Literal::Int(5)).ok());
  EXPECT_FALSE(
      CoerceLiteral(ColumnType::kDouble, sql::Literal::String("x")).ok());
}

}  // namespace
}  // namespace dpe::cryptdb
