#include "db/table.h"

#include <gtest/gtest.h>

#include "db/database.h"

namespace dpe::db {
namespace {

TableSchema TwoColSchema() {
  return TableSchema({{"id", ColumnType::kInt}, {"name", ColumnType::kString}});
}

TEST(TableTest, AppendValidRow) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.Append({Value::Int(1), Value::String("a")}).ok());
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value::Int(1)}).ok());
}

TEST(TableTest, RejectsTypeMismatch) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value::String("x"), Value::String("a")}).ok());
}

TEST(TableTest, NullAlwaysFits) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.Append({Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, IntWidensIntoDoubleColumn) {
  Table t("t", TableSchema({{"x", ColumnType::kDouble}}));
  ASSERT_TRUE(t.Append({Value::Int(3)}).ok());
  EXPECT_TRUE(t.rows()[0][0].is_double());
  EXPECT_EQ(t.rows()[0][0].double_value(), 3.0);
}

TEST(TableTest, RowKeyInjective) {
  // Adjacent-field ambiguity must not collapse distinct rows.
  Row r1 = {Value::String("ab"), Value::String("c")};
  Row r2 = {Value::String("a"), Value::String("bc")};
  EXPECT_NE(Table::RowKey(r1), Table::RowKey(r2));
}

TEST(TableTest, RowKeySetDeduplicates) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Append({Value::Int(2), Value::String("b")}).ok());
  EXPECT_EQ(t.RowKeySet().size(), 2u);
}

TEST(TableTest, DistinctColumnValues) {
  Table t("t", TwoColSchema());
  for (int v : {3, 1, 3, 2, 1}) {
    ASSERT_TRUE(t.Append({Value::Int(v), Value::String("x")}).ok());
  }
  auto values = t.DistinctColumnValues("id").value();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], Value::Int(1));
  EXPECT_EQ(values[2], Value::Int(3));
  EXPECT_FALSE(t.DistinctColumnValues("nope").ok());
}

TEST(SchemaTest, FindAndAccepts) {
  TableSchema s = TwoColSchema();
  EXPECT_EQ(s.Find("id").value(), 0u);
  EXPECT_EQ(s.Find("name").value(), 1u);
  EXPECT_FALSE(s.Find("missing").has_value());
  EXPECT_TRUE(s.Accepts(0, Value::Int(1)));
  EXPECT_FALSE(s.Accepts(0, Value::String("x")));
  EXPECT_FALSE(s.Accepts(5, Value::Int(1)));
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  ASSERT_TRUE(db.CreateTable(Table("a", TwoColSchema())).ok());
  EXPECT_TRUE(db.HasTable("a"));
  EXPECT_TRUE(db.GetTable("a").ok());
  EXPECT_FALSE(db.GetTable("b").ok());
  EXPECT_FALSE(db.CreateTable(Table("a", TwoColSchema())).ok());  // duplicate
  EXPECT_FALSE(db.CreateTable(Table("", TwoColSchema())).ok());   // unnamed
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"a"});
}

}  // namespace
}  // namespace dpe::db
