#include "db/interval.h"

#include <gtest/gtest.h>

namespace dpe::db {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(IntervalTest, EmptyDetection) {
  EXPECT_FALSE(Interval::Point(I(5)).IsEmpty());
  EXPECT_FALSE(Interval::Closed(I(1), I(2)).IsEmpty());
  EXPECT_TRUE(Interval::Closed(I(2), I(1)).IsEmpty());
  Interval half_open{IntervalBound{I(1), true}, IntervalBound{I(1), false}};
  EXPECT_TRUE(half_open.IsEmpty());
  EXPECT_FALSE(Interval::All().IsEmpty());
}

TEST(IntervalTest, Contains) {
  Interval iv = Interval::Closed(I(1), I(5));
  EXPECT_TRUE(iv.Contains(I(1)));
  EXPECT_TRUE(iv.Contains(I(5)));
  EXPECT_FALSE(iv.Contains(I(0)));
  Interval open{IntervalBound{I(1), false}, IntervalBound{I(5), false}};
  EXPECT_FALSE(open.Contains(I(1)));
  EXPECT_TRUE(open.Contains(I(2)));
  EXPECT_TRUE(Interval::LessThan(I(3), false).Contains(I(-100)));
  EXPECT_FALSE(Interval::LessThan(I(3), false).Contains(I(3)));
  EXPECT_TRUE(Interval::GreaterThan(I(3), true).Contains(I(3)));
}

TEST(IntervalSetTest, NormalizationMergesOverlaps) {
  auto s = IntervalSet::OfAll(
      {Interval::Closed(I(1), I(5)), Interval::Closed(I(3), I(8))});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval::Closed(I(1), I(8)));
}

TEST(IntervalSetTest, NormalizationMergesTouchingWithInclusiveEndpoint) {
  // [1,3] u (3,5] -> [1,5]
  auto s = IntervalSet::OfAll(
      {Interval::Closed(I(1), I(3)),
       Interval{IntervalBound{I(3), false}, IntervalBound{I(5), true}}});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval::Closed(I(1), I(5)));
}

TEST(IntervalSetTest, NoMergeWhenBothExclusive) {
  // [1,3) u (3,5] stays two pieces: 3 is in neither.
  auto s = IntervalSet::OfAll(
      {Interval{IntervalBound{I(1), true}, IntervalBound{I(3), false}},
       Interval{IntervalBound{I(3), false}, IntervalBound{I(5), true}}});
  EXPECT_EQ(s.intervals().size(), 2u);
}

TEST(IntervalSetTest, NoDiscreteAdjacencyMerge) {
  // [1,2] u [3,4] must NOT merge: merging would require successor arithmetic,
  // which does not commute with order-preserving re-encodings.
  auto s = IntervalSet::OfAll(
      {Interval::Closed(I(1), I(2)), Interval::Closed(I(3), I(4))});
  EXPECT_EQ(s.intervals().size(), 2u);
}

TEST(IntervalSetTest, UnionAndIntersect) {
  auto a = IntervalSet::Of(Interval::Closed(I(1), I(5)));
  auto b = IntervalSet::Of(Interval::Closed(I(4), I(9)));
  auto u = a.Union(b);
  ASSERT_EQ(u.intervals().size(), 1u);
  EXPECT_EQ(u.intervals()[0], Interval::Closed(I(1), I(9)));
  auto i = a.Intersect(b);
  ASSERT_EQ(i.intervals().size(), 1u);
  EXPECT_EQ(i.intervals()[0], Interval::Closed(I(4), I(5)));
}

TEST(IntervalSetTest, DisjointIntersectionIsEmpty) {
  auto a = IntervalSet::Of(Interval::Closed(I(1), I(2)));
  auto b = IntervalSet::Of(Interval::Closed(I(5), I(6)));
  EXPECT_TRUE(a.Intersect(b).IsEmpty());
  EXPECT_FALSE(a.Intersects(b));
}

TEST(IntervalSetTest, PointIntersection) {
  auto a = IntervalSet::Of(Interval::Closed(I(1), I(5)));
  auto p = IntervalSet::Of(Interval::Point(I(5)));
  EXPECT_TRUE(a.Intersects(p));
  auto edge = IntervalSet::Of(
      Interval{IntervalBound{I(1), true}, IntervalBound{I(5), false}});
  EXPECT_FALSE(edge.Intersects(p));
}

TEST(IntervalSetTest, ComplementOfPoint) {
  auto c = IntervalSet::Of(Interval::Point(I(5))).Complement();
  ASSERT_EQ(c.intervals().size(), 2u);
  EXPECT_FALSE(c.Contains(I(5)));
  EXPECT_TRUE(c.Contains(I(4)));
  EXPECT_TRUE(c.Contains(I(6)));
  // Complement twice is identity.
  EXPECT_EQ(c.Complement(), IntervalSet::Of(Interval::Point(I(5))));
}

TEST(IntervalSetTest, ComplementOfEmptyAndAll) {
  EXPECT_EQ(IntervalSet::Empty().Complement(), IntervalSet::All());
  EXPECT_EQ(IntervalSet::All().Complement(), IntervalSet::Empty());
}

TEST(IntervalSetTest, ComplementOfUnion) {
  auto s = IntervalSet::OfAll(
      {Interval::Closed(I(1), I(2)), Interval::Closed(I(5), I(6))});
  auto c = s.Complement();
  ASSERT_EQ(c.intervals().size(), 3u);
  EXPECT_TRUE(c.Contains(I(0)));
  EXPECT_TRUE(c.Contains(I(3)));
  EXPECT_TRUE(c.Contains(I(7)));
  EXPECT_FALSE(c.Contains(I(1)));
  EXPECT_FALSE(c.Contains(I(6)));
}

TEST(IntervalSetTest, EqualityAfterNormalization) {
  auto a = IntervalSet::OfAll(
      {Interval::Closed(I(1), I(3)), Interval::Closed(I(2), I(7))});
  auto b = IntervalSet::Of(Interval::Closed(I(1), I(7)));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, IntervalSet::Of(Interval::Closed(I(1), I(8))));
}

TEST(IntervalSetTest, StringEndpoints) {
  auto a = IntervalSet::Of(Interval::Closed(Value::String("berlin"),
                                            Value::String("paris")));
  EXPECT_TRUE(a.Contains(Value::String("london")));
  EXPECT_FALSE(a.Contains(Value::String("amsterdam")));
  auto p = IntervalSet::Of(Interval::Point(Value::String("rome")));
  EXPECT_FALSE(a.Intersects(p));
}

TEST(IntervalSetTest, MembershipAgreesWithBruteForce) {
  // Property check: set algebra vs direct membership evaluation.
  auto a = IntervalSet::OfAll(
      {Interval::Closed(I(0), I(10)),
       Interval{IntervalBound{I(20), false}, IntervalBound{I(30), false}}});
  auto b = IntervalSet::OfAll(
      {Interval::Closed(I(5), I(25))});
  auto u = a.Union(b);
  auto i = a.Intersect(b);
  auto c = a.Complement();
  for (int64_t v = -5; v <= 35; ++v) {
    bool in_a = a.Contains(I(v));
    bool in_b = b.Contains(I(v));
    EXPECT_EQ(u.Contains(I(v)), in_a || in_b) << v;
    EXPECT_EQ(i.Contains(I(v)), in_a && in_b) << v;
    EXPECT_EQ(c.Contains(I(v)), !in_a) << v;
  }
}

}  // namespace
}  // namespace dpe::db
