// Metamorphic properties of the SELECT executor, checked over generated
// workloads: logical identities that must hold for ANY query/database.

#include <gtest/gtest.h>

#include "db/executor.h"
#include "sql/printer.h"
#include "workload/scenarios.h"

namespace dpe::db {
namespace {

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    workload::ScenarioOptions opt;
    opt.seed = GetParam();
    opt.rows_per_relation = 50;
    opt.log_size = 40;
    scenario_ = workload::MakeShopScenario(opt).value();
  }

  workload::Scenario scenario_;
};

TEST_P(ExecutorPropertyTest, IdempotentConjunction) {
  // WHERE p  ==  WHERE p AND p.
  for (const auto& q : scenario_.log) {
    if (!q.where || !q.group_by.empty()) continue;
    sql::SelectQuery doubled = q.CloneValue();
    std::vector<sql::PredicatePtr> both;
    both.push_back(q.where->Clone());
    both.push_back(q.where->Clone());
    doubled.where = sql::Predicate::And(std::move(both));
    auto r1 = Execute(scenario_.database, q).value();
    auto r2 = Execute(scenario_.database, doubled).value();
    EXPECT_EQ(r1.TupleKeySet(), r2.TupleKeySet()) << sql::ToSql(q);
  }
}

TEST_P(ExecutorPropertyTest, ExcludedMiddleOnNonNullData) {
  // The shop generator produces no NULLs, so WHERE p OR NOT p == full scan.
  size_t checked = 0;
  for (const auto& q : scenario_.log) {
    if (!q.where || !q.group_by.empty() || q.limit.has_value()) continue;
    bool has_agg = false;
    for (const auto& item : q.items) has_agg |= item.agg != sql::AggFn::kNone;
    if (has_agg) continue;
    sql::SelectQuery full = q.CloneValue();
    std::vector<sql::PredicatePtr> either;
    either.push_back(q.where->Clone());
    either.push_back(sql::Predicate::Not(q.where->Clone()));
    full.where = sql::Predicate::Or(std::move(either));
    sql::SelectQuery unfiltered = q.CloneValue();
    unfiltered.where = nullptr;
    auto r1 = Execute(scenario_.database, full).value();
    auto r2 = Execute(scenario_.database, unfiltered).value();
    EXPECT_EQ(r1.TupleKeySet(), r2.TupleKeySet()) << sql::ToSql(q);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ExecutorPropertyTest, DistinctIsIdempotentAndOrderIrrelevantForSets) {
  for (const auto& q : scenario_.log) {
    if (!q.group_by.empty() || q.limit.has_value()) continue;
    bool has_agg = false;
    for (const auto& item : q.items) has_agg |= item.agg != sql::AggFn::kNone;
    if (has_agg) continue;
    sql::SelectQuery distinct_q = q.CloneValue();
    distinct_q.distinct = true;
    sql::SelectQuery unordered = q.CloneValue();
    unordered.order_by.clear();
    auto plain = Execute(scenario_.database, q).value();
    auto dist = Execute(scenario_.database, distinct_q).value();
    auto unord = Execute(scenario_.database, unordered).value();
    EXPECT_EQ(plain.TupleKeySet(), dist.TupleKeySet()) << sql::ToSql(q);
    EXPECT_EQ(dist.rows.size(), dist.TupleKeySet().size());
    EXPECT_EQ(plain.TupleKeySet(), unord.TupleKeySet());
  }
}

TEST_P(ExecutorPropertyTest, LimitIsAPrefixOfTheUnlimitedResult) {
  for (const auto& q : scenario_.log) {
    if (!q.limit.has_value() || !q.group_by.empty()) continue;
    sql::SelectQuery unlimited = q.CloneValue();
    unlimited.limit.reset();
    auto limited = Execute(scenario_.database, q).value();
    auto full = Execute(scenario_.database, unlimited).value();
    ASSERT_LE(limited.rows.size(), full.rows.size());
    ASSERT_LE(limited.rows.size(), static_cast<size_t>(*q.limit));
    for (size_t i = 0; i < limited.rows.size(); ++i) {
      EXPECT_EQ(Table::RowKey(limited.rows[i]), Table::RowKey(full.rows[i]));
    }
  }
}

TEST_P(ExecutorPropertyTest, CountStarMatchesRowCount) {
  for (const auto& q : scenario_.log) {
    if (!q.group_by.empty() || q.joins.size() > 0) continue;
    bool has_agg = false;
    for (const auto& item : q.items) has_agg |= item.agg != sql::AggFn::kNone;
    if (has_agg) continue;
    sql::SelectQuery count_q = q.CloneValue();
    count_q.items = {sql::SelectItem::CountStar()};
    count_q.order_by.clear();
    count_q.limit.reset();
    count_q.distinct = false;
    sql::SelectQuery rows_q = q.CloneValue();
    rows_q.order_by.clear();
    rows_q.limit.reset();
    rows_q.distinct = false;
    auto count = Execute(scenario_.database, count_q).value();
    auto rows = Execute(scenario_.database, rows_q).value();
    ASSERT_EQ(count.rows.size(), 1u);
    EXPECT_EQ(count.rows[0][0].int_value(),
              static_cast<int64_t>(rows.rows.size()))
        << sql::ToSql(q);
  }
}

TEST_P(ExecutorPropertyTest, OrderByIsAPermutation) {
  for (const auto& q : scenario_.log) {
    if (q.order_by.empty() || !q.group_by.empty()) continue;
    sql::SelectQuery unordered = q.CloneValue();
    unordered.order_by.clear();
    unordered.limit.reset();
    sql::SelectQuery ordered = q.CloneValue();
    ordered.limit.reset();
    auto a = Execute(scenario_.database, ordered).value();
    auto b = Execute(scenario_.database, unordered).value();
    std::multiset<std::string> ka, kb;
    for (const auto& r : a.rows) ka.insert(Table::RowKey(r));
    for (const auto& r : b.rows) kb.insert(Table::RowKey(r));
    EXPECT_EQ(ka, kb) << sql::ToSql(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace dpe::db
