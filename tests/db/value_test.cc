#include "db/value.h"

#include <gtest/gtest.h>

namespace dpe::db {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(1).is_int());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
}

TEST(ValueTest, SqlCompareNumericCrossType) {
  EXPECT_EQ(Value::Compare(Value::Int(5), Value::Double(5.0)).value(), 0);
  EXPECT_EQ(Value::Compare(Value::Int(5), Value::Double(5.5)).value(), -1);
  EXPECT_EQ(Value::Compare(Value::Double(6.0), Value::Int(5)).value(), 1);
}

TEST(ValueTest, SqlCompareNullAndMixedAreUnknown) {
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int(1)).has_value());
  EXPECT_FALSE(Value::Compare(Value::Int(1), Value::String("1")).has_value());
}

TEST(ValueTest, SqlEquals) {
  EXPECT_TRUE(Value::SqlEquals(Value::Int(5), Value::Int(5)));
  EXPECT_TRUE(Value::SqlEquals(Value::Int(5), Value::Double(5.0)));
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Null()));
  EXPECT_TRUE(Value::SqlEquals(Value::String("a"), Value::String("a")));
}

TEST(ValueTest, ContainerOrderIsStrictWeak) {
  std::vector<Value> vs = {Value::String("b"), Value::Int(2), Value::Null(),
                           Value::Double(1.5), Value::Int(-1),
                           Value::String("a")};
  std::sort(vs.begin(), vs.end());
  EXPECT_TRUE(vs[0].is_null());
  EXPECT_EQ(vs[1], Value::Int(-1));
  EXPECT_EQ(vs[2], Value::Double(1.5));
  EXPECT_EQ(vs[3], Value::Int(2));
  EXPECT_EQ(vs[4], Value::String("a"));
  EXPECT_EQ(vs[5], Value::String("b"));
}

TEST(ValueTest, KeyBytesInjectiveAcrossTypes) {
  EXPECT_NE(Value::Int(5).KeyBytes(), Value::String("5").KeyBytes());
  EXPECT_NE(Value::Int(5).KeyBytes(), Value::Double(5).KeyBytes());
  EXPECT_NE(Value::Null().KeyBytes(), Value::String("").KeyBytes());
}

TEST(ValueTest, LiteralRoundTrip) {
  for (const Value& v :
       {Value::Int(-3), Value::Double(2.25), Value::String("s")}) {
    auto lit = v.ToLiteral().value();
    EXPECT_EQ(Value::FromLiteral(lit), v);
  }
  EXPECT_FALSE(Value::Null().ToLiteral().ok());
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Null().ToDisplayString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToDisplayString(), "42");
  EXPECT_EQ(Value::String("hi").ToDisplayString(), "'hi'");
}

}  // namespace
}  // namespace dpe::db
