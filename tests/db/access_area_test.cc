#include "db/access_area.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::db {
namespace {

class AccessAreaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domains_.Set("r.a", {Value::Int(0), Value::Int(100)});
    domains_.Set("r.b", {Value::Int(0), Value::Int(100)});
    domains_.Set("r.s", {Value::String("aa"), Value::String("zz")});
    domains_.Set("t.x", {Value::Int(0), Value::Int(50)});
  }

  std::map<std::string, IntervalSet> Areas(const std::string& sql,
                                           bool clip = true) {
    auto q = sql::Parse(sql).value();
    AccessAreaOptions opt;
    opt.clip_to_domain = clip;
    auto r = AccessAreas(q, domains_, opt);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return std::move(r).value();
  }

  DomainRegistry domains_;
};

TEST_F(AccessAreaTest, SelectClauseDoesNotInfluenceAccessArea) {
  // The paper's observation (SS IV-C): SELECT-only attributes are not accessed.
  auto areas = Areas("SELECT a FROM r WHERE b > 10");
  EXPECT_FALSE(areas.contains("r.a"));
  EXPECT_TRUE(areas.contains("r.b"));
}

TEST_F(AccessAreaTest, IncludeSelectClauseOption) {
  auto q = sql::Parse("SELECT a FROM r WHERE b > 10").value();
  AccessAreaOptions opt;
  opt.include_select_clause = true;
  auto areas = AccessAreas(q, domains_, opt).value();
  EXPECT_TRUE(areas.contains("r.a"));
  // a is unconstrained: full domain.
  EXPECT_EQ(areas["r.a"],
            IntervalSet::Of(Interval::Closed(Value::Int(0), Value::Int(100))));
}

TEST_F(AccessAreaTest, RangePredicate) {
  auto areas = Areas("SELECT a FROM r WHERE b > 10");
  IntervalSet expected = IntervalSet::Of(
      Interval{IntervalBound{Value::Int(10), false},
               IntervalBound{Value::Int(100), true}});
  EXPECT_EQ(areas["r.b"], expected);
}

TEST_F(AccessAreaTest, EqualityIsAPoint) {
  auto areas = Areas("SELECT a FROM r WHERE b = 42");
  EXPECT_EQ(areas["r.b"], IntervalSet::Of(Interval::Point(Value::Int(42))));
}

TEST_F(AccessAreaTest, BetweenAndIn) {
  auto areas = Areas("SELECT a FROM r WHERE b BETWEEN 10 AND 20");
  EXPECT_EQ(areas["r.b"],
            IntervalSet::Of(Interval::Closed(Value::Int(10), Value::Int(20))));
  auto areas2 = Areas("SELECT a FROM r WHERE b IN (1, 5, 9)");
  EXPECT_EQ(areas2["r.b"].intervals().size(), 3u);
}

TEST_F(AccessAreaTest, ConjunctionIntersects) {
  auto areas = Areas("SELECT a FROM r WHERE b > 10 AND b <= 20");
  IntervalSet expected = IntervalSet::Of(
      Interval{IntervalBound{Value::Int(10), false},
               IntervalBound{Value::Int(20), true}});
  EXPECT_EQ(areas["r.b"], expected);
}

TEST_F(AccessAreaTest, DisjunctionUnites) {
  auto areas = Areas("SELECT a FROM r WHERE b = 1 OR b = 5");
  EXPECT_EQ(areas["r.b"].intervals().size(), 2u);
}

TEST_F(AccessAreaTest, CrossAttributeConjunction) {
  // b constrained, a constrained separately; each projects its own region.
  auto areas = Areas("SELECT s FROM r WHERE a = 5 AND b > 50");
  EXPECT_EQ(areas["r.a"], IntervalSet::Of(Interval::Point(Value::Int(5))));
  EXPECT_TRUE(areas["r.b"].Contains(Value::Int(60)));
  EXPECT_FALSE(areas["r.b"].Contains(Value::Int(50)));
}

TEST_F(AccessAreaTest, CrossAttributeDisjunctionGivesFullDomain) {
  // a = 5 OR b = 7: rows with b = 7 can have any a.
  auto areas = Areas("SELECT s FROM r WHERE a = 5 OR b = 7");
  EXPECT_EQ(areas["r.a"],
            IntervalSet::Of(Interval::Closed(Value::Int(0), Value::Int(100))));
  EXPECT_EQ(areas["r.b"],
            IntervalSet::Of(Interval::Closed(Value::Int(0), Value::Int(100))));
}

TEST_F(AccessAreaTest, NegationPushdown) {
  auto areas = Areas("SELECT a FROM r WHERE NOT b = 42");
  EXPECT_FALSE(areas["r.b"].Contains(Value::Int(42)));
  EXPECT_TRUE(areas["r.b"].Contains(Value::Int(41)));
  auto areas2 = Areas("SELECT a FROM r WHERE NOT (b > 10)");
  EXPECT_TRUE(areas2["r.b"].Contains(Value::Int(10)));
  EXPECT_FALSE(areas2["r.b"].Contains(Value::Int(11)));
  auto areas3 = Areas("SELECT a FROM r WHERE NOT (b BETWEEN 10 AND 20)");
  EXPECT_TRUE(areas3["r.b"].Contains(Value::Int(9)));
  EXPECT_FALSE(areas3["r.b"].Contains(Value::Int(15)));
  EXPECT_TRUE(areas3["r.b"].Contains(Value::Int(21)));
}

TEST_F(AccessAreaTest, DeMorganNegatedConjunction) {
  auto areas = Areas("SELECT a FROM r WHERE NOT (b = 1 AND a = 2)");
  // NOT(b=1 AND a=2) = b<>1 OR a<>2; for b: complement-of-1 union universe.
  EXPECT_EQ(areas["r.b"],
            IntervalSet::Of(Interval::Closed(Value::Int(0), Value::Int(100))));
}

TEST_F(AccessAreaTest, GroupOrderJoinColumnsAreAccessed) {
  auto areas =
      Areas("SELECT s, COUNT(*) FROM r WHERE a > 1 GROUP BY s ORDER BY s");
  EXPECT_TRUE(areas.contains("r.s"));
  EXPECT_EQ(areas["r.s"],
            IntervalSet::Of(Interval::Closed(Value::String("aa"),
                                             Value::String("zz"))));
}

TEST_F(AccessAreaTest, JoinPredicateGivesFullDomainsBothSides) {
  auto q = sql::Parse("SELECT r.a FROM r JOIN t ON r.b = t.x WHERE r.a > 3")
               .value();
  auto areas = AccessAreas(q, domains_, AccessAreaOptions{}).value();
  EXPECT_TRUE(areas.contains("r.b"));
  EXPECT_TRUE(areas.contains("t.x"));
  EXPECT_EQ(areas["t.x"],
            IntervalSet::Of(Interval::Closed(Value::Int(0), Value::Int(50))));
}

TEST_F(AccessAreaTest, PredicatesClipToDomain) {
  auto areas = Areas("SELECT a FROM r WHERE b > -100");
  EXPECT_EQ(areas["r.b"],
            IntervalSet::Of(Interval::Closed(Value::Int(0), Value::Int(100))));
}

TEST_F(AccessAreaTest, UnclippedModeUsesUnboundedUniverse) {
  auto areas = Areas("SELECT a FROM r WHERE b > 10", /*clip=*/false);
  EXPECT_TRUE(areas["r.b"].Contains(Value::Int(1000000)));  // beyond domain
  // Unclipped mode never consults the registry, so unknown attrs work too.
  auto q = sql::Parse("SELECT a FROM unknown_rel WHERE zz = 1").value();
  AccessAreaOptions opt;
  opt.clip_to_domain = false;
  EXPECT_TRUE(AccessAreas(q, domains_, opt).ok());
}

TEST_F(AccessAreaTest, ClippedAndUnclippedAgreeOnDeltaRelations) {
  // For in-domain constants the two modes yield the same equal/intersect/
  // disjoint relations (the property the DPE scheme relies on).
  const char* queries[] = {
      "SELECT a FROM r WHERE b = 10",
      "SELECT a FROM r WHERE b = 11",
      "SELECT a FROM r WHERE b > 10",
      "SELECT a FROM r WHERE b BETWEEN 5 AND 15",
      "SELECT a FROM r WHERE NOT b = 10",
      "SELECT a FROM r WHERE b IN (10, 20)",
  };
  for (const char* qa : queries) {
    for (const char* qb : queries) {
      auto ca = Areas(qa, true)["r.b"], cb = Areas(qb, true)["r.b"];
      auto ua = Areas(qa, false)["r.b"], ub = Areas(qb, false)["r.b"];
      EXPECT_EQ(ca == cb, ua == ub) << qa << " vs " << qb;
      EXPECT_EQ(ca.Intersects(cb), ua.Intersects(ub)) << qa << " vs " << qb;
    }
  }
}

TEST_F(AccessAreaTest, MissingDomainFailsInClippedMode) {
  auto q = sql::Parse("SELECT a FROM r WHERE unknown_attr = 1").value();
  EXPECT_FALSE(AccessAreas(q, domains_, AccessAreaOptions{}).ok());
}

}  // namespace
}  // namespace dpe::db
