#include "db/executor.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dpe::db {
namespace {

/// Tiny fixed database:
///   emp(id INT, dept STRING, salary INT, rating DOUBLE)
///   dept(name STRING, budget INT)
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table emp("emp", TableSchema({{"id", ColumnType::kInt},
                                  {"dept", ColumnType::kString},
                                  {"salary", ColumnType::kInt},
                                  {"rating", ColumnType::kDouble}}));
    auto add = [&](int id, const char* dept, int salary, double rating) {
      ASSERT_TRUE(emp.Append({Value::Int(id), Value::String(dept),
                              Value::Int(salary), Value::Double(rating)})
                      .ok());
    };
    add(1, "eng", 100, 4.5);
    add(2, "eng", 120, 3.5);
    add(3, "sales", 90, 4.0);
    add(4, "sales", 110, 2.5);
    add(5, "hr", 80, 5.0);
    ASSERT_TRUE(db_.CreateTable(std::move(emp)).ok());

    Table dept("dept", TableSchema({{"name", ColumnType::kString},
                                    {"budget", ColumnType::kInt}}));
    ASSERT_TRUE(dept.Append({Value::String("eng"), Value::Int(1000)}).ok());
    ASSERT_TRUE(dept.Append({Value::String("sales"), Value::Int(500)}).ok());
    ASSERT_TRUE(db_.CreateTable(std::move(dept)).ok());
  }

  ResultTable Run(const std::string& sql) {
    auto q = sql::Parse(sql);
    EXPECT_TRUE(q.ok()) << sql << ": " << q.status();
    auto r = Execute(db_, *q);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return std::move(r).value();
  }

  Status RunError(const std::string& sql) {
    auto q = sql::Parse(sql);
    EXPECT_TRUE(q.ok()) << sql;
    return Execute(db_, *q).status();
  }

  Database db_;
};

TEST_F(ExecutorTest, FullScanStar) {
  auto r = Run("SELECT * FROM emp");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].size(), 4u);
}

TEST_F(ExecutorTest, Projection) {
  auto r = Run("SELECT id FROM emp");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].size(), 1u);
}

TEST_F(ExecutorTest, EqualityFilter) {
  auto r = Run("SELECT id FROM emp WHERE dept = 'eng'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value::Int(1));
  EXPECT_EQ(r.rows[1][0], Value::Int(2));
}

TEST_F(ExecutorTest, RangeFilters) {
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary > 100").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary >= 100").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary BETWEEN 90 AND 110").rows.size(),
            3u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE rating < 4.0").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary <> 100").rows.size(), 4u);
}

TEST_F(ExecutorTest, BooleanLogic) {
  EXPECT_EQ(
      Run("SELECT id FROM emp WHERE dept = 'eng' AND salary > 110").rows.size(),
      1u);
  EXPECT_EQ(
      Run("SELECT id FROM emp WHERE dept = 'hr' OR salary = 90").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE NOT dept = 'eng'").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE NOT (salary > 80 AND salary < 120)")
                .rows.size(),
            2u);
}

TEST_F(ExecutorTest, InList) {
  EXPECT_EQ(Run("SELECT id FROM emp WHERE id IN (1, 3, 99)").rows.size(), 2u);
}

TEST_F(ExecutorTest, IntConstantMatchesDoubleColumn) {
  EXPECT_EQ(Run("SELECT id FROM emp WHERE rating = 4").rows.size(), 1u);
}

TEST_F(ExecutorTest, Distinct) {
  auto r = Run("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, OrderByNonProjectedColumn) {
  auto r = Run("SELECT id FROM emp ORDER BY salary");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0], Value::Int(5));   // salary 80
  EXPECT_EQ(r.rows[4][0], Value::Int(2));   // salary 120
}

TEST_F(ExecutorTest, OrderByDescWithLimit) {
  auto r = Run("SELECT id FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value::Int(2));
  EXPECT_EQ(r.rows[1][0], Value::Int(4));
}

TEST_F(ExecutorTest, CountStar) {
  auto r = Run("SELECT COUNT(*) FROM emp WHERE salary >= 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, GlobalAggregates) {
  auto r = Run("SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(500));
  EXPECT_EQ(r.rows[0][1], Value::Double(100.0));
  EXPECT_EQ(r.rows[0][2], Value::Int(80));
  EXPECT_EQ(r.rows[0][3], Value::Int(120));
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  auto r = Run("SELECT COUNT(*), SUM(salary) FROM emp WHERE salary > 99999");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(0));
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupBy) {
  auto r = Run("SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept");
  ASSERT_EQ(r.rows.size(), 3u);
  // Groups come out in deterministic (key) order: eng, hr, sales.
  EXPECT_EQ(r.rows[0][0], Value::String("eng"));
  EXPECT_EQ(r.rows[0][1], Value::Int(2));
  EXPECT_EQ(r.rows[0][2], Value::Int(220));
  EXPECT_EQ(r.rows[1][0], Value::String("hr"));
  EXPECT_EQ(r.rows[2][0], Value::String("sales"));
}

TEST_F(ExecutorTest, GroupByWithFilter) {
  auto r = Run(
      "SELECT dept, AVG(salary) FROM emp WHERE salary >= 90 GROUP BY dept");
  ASSERT_EQ(r.rows.size(), 2u);  // hr filtered out entirely
}

TEST_F(ExecutorTest, NonGroupedColumnRejected) {
  EXPECT_EQ(RunError("SELECT id, COUNT(*) FROM emp GROUP BY dept").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, HashJoin) {
  auto r = Run(
      "SELECT emp.id, dept.budget FROM emp JOIN dept ON emp.dept = dept.name");
  EXPECT_EQ(r.rows.size(), 4u);  // hr has no dept row
}

TEST_F(ExecutorTest, JoinWithFilterAndAlias) {
  auto r = Run(
      "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name "
      "WHERE d.budget > 600");
  ASSERT_EQ(r.rows.size(), 2u);  // eng employees
}

TEST_F(ExecutorTest, JoinAggregate) {
  auto r = Run(
      "SELECT d.name, SUM(e.salary) FROM emp e JOIN dept d ON e.dept = d.name "
      "GROUP BY d.name");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, ColumnCompareInWhere) {
  // salary > budget never true here; id = id trivially true after join.
  auto r = Run(
      "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name "
      "WHERE e.salary > d.budget");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(ExecutorTest, UnknownTableOrColumn) {
  EXPECT_EQ(RunError("SELECT a FROM missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(RunError("SELECT missing FROM emp").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, AmbiguousColumnRejected) {
  // "name" exists in dept only; "id" in emp only; make a genuinely ambiguous
  // reference by self-joining dept (both sides have "name").
  EXPECT_EQ(RunError("SELECT name FROM dept d1 JOIN dept d2 ON d1.name = d2.name")
                .code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, NullComparisonsAreFalse) {
  Table t("nt", TableSchema({{"x", ColumnType::kInt}}));
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  ASSERT_TRUE(t.Append({Value::Int(1)}).ok());
  ASSERT_TRUE(db_.CreateTable(std::move(t)).ok());
  EXPECT_EQ(Run("SELECT x FROM nt WHERE x = 1").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT x FROM nt WHERE NOT x = 1").rows.size(), 1u);  // NULL row
  EXPECT_EQ(Run("SELECT x FROM nt WHERE x <> 1").rows.size(), 0u);
}

TEST_F(ExecutorTest, TupleKeySetSemantics) {
  auto r = Run("SELECT dept FROM emp");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.TupleKeySet().size(), 3u);
}

}  // namespace
}  // namespace dpe::db
