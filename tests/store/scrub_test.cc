// Scrub(): quarantine-and-rewrite repair of localized corruption.
//
// The invariant under test (matrix_store.h): a scrub never invents state.
// Whatever a byte flip destroys, the repaired store serves a value-correct
// SUBSET of the reference — recovered cells match the reference exactly,
// lost cells are counted as quarantined, and unsalvageable damage (the
// query-log core, v1 monoliths) leaves strict loads failing typed rather
// than producing a wrong matrix. The flip-every-byte sweep proves that for
// every possible single-byte corruption of a v2 snapshot.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "store/matrix_store.h"

namespace dpe::store {
namespace {

namespace fs = std::filesystem;

std::string ReadAllBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::tuple<std::string, uint32_t, uint32_t> CellKey(const CacheEntry& e) {
  return {e.measure, std::min(e.i, e.j), std::max(e.i, e.j)};
}

Snapshot BaseSnapshot() {
  Snapshot snap;
  snap.queries = {"SELECT a FROM t0", "SELECT b FROM t1", "SELECT c FROM t2"};
  snap.entries = {
      CacheEntry{"token", 0, 1, 0.25},
      CacheEntry{"token", 0, 2, 0.5},
      CacheEntry{"token", 1, 2, 0.75},
      CacheEntry{"structure", 0, 1, 0.125},
  };
  return snap;
}

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("scrub_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(ScrubTest, CleanStoreScrubsAsANoOp) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  ASSERT_TRUE(store->AppendQuery(3, "SELECT d FROM t3").ok());
  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->manifest_rebuilt);
  EXPECT_FALSE(report->snapshot_rewritten);
  EXPECT_FALSE(report->snapshot_unreadable);
  EXPECT_FALSE(report->journal_rewritten);
  EXPECT_EQ(report->cells_quarantined, 0u);
  EXPECT_EQ(report->journal_records_quarantined, 0u);
  EXPECT_GT(report->snapshot_chunks_checked, 0u);
  EXPECT_EQ(report->journal_records_checked, 1u);
  EXPECT_TRUE(store->ReadSnapshot().ok());
  auto journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->size(), 1u);
}

TEST_F(ScrubTest, FlipEveryByteOfTheSnapshotNeverYieldsAWrongCell) {
  const Snapshot reference = BaseSnapshot();
  {
    auto store = MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->WriteSnapshot(reference).ok());
  }
  const fs::path snapshot_path = fs::path(dir_) / "snapshot.dpe";
  const std::string full = ReadAllBytes(snapshot_path);
  ASSERT_GT(full.size(), 16u);

  std::map<std::tuple<std::string, uint32_t, uint32_t>, double> expect;
  for (const CacheEntry& e : reference.entries) expect[CellKey(e)] = e.d;

  for (size_t flip = 0; flip < full.size(); ++flip) {
    std::string damaged = full;
    damaged[flip] = static_cast<char>(damaged[flip] ^ 0x5a);
    WriteBytes(snapshot_path, damaged);

    // The strict load must fail typed or — never anything in between —
    // deliver the exact reference (a flip in bytes the decode ignores).
    {
      auto store = MatrixStore::OpenExisting(dir_);
      ASSERT_TRUE(store.ok()) << "flip " << flip;
      auto strict = store->ReadSnapshot();
      if (strict.ok()) {
        EXPECT_EQ(strict->queries, reference.queries) << "flip " << flip;
        EXPECT_EQ(strict->entries, reference.entries) << "flip " << flip;
      } else {
        EXPECT_EQ(strict.status().code(), StatusCode::kParseError)
            << "flip " << flip << ": " << strict.status();
      }
    }

    auto store = MatrixStore::OpenExisting(dir_);
    ASSERT_TRUE(store.ok()) << "flip " << flip;
    auto report = store->Scrub();
    ASSERT_TRUE(report.ok()) << "flip " << flip << ": " << report.status();
    if (report->snapshot_unreadable) {
      // Core/structural damage: unsalvageable, and the strict load must
      // keep failing typed rather than serve a guess.
      EXPECT_FALSE(store->ReadSnapshot().ok()) << "flip " << flip;
      continue;
    }
    auto repaired = store->ReadSnapshot();
    ASSERT_TRUE(repaired.ok()) << "flip " << flip << ": "
                               << repaired.status();
    // The query log is either fully intact or the file was unreadable.
    EXPECT_EQ(repaired->queries, reference.queries) << "flip " << flip;
    // Every surviving cell carries its exact reference value.
    for (const CacheEntry& e : repaired->entries) {
      auto it = expect.find(CellKey(e));
      ASSERT_NE(it, expect.end()) << "flip " << flip << ": invented cell";
      EXPECT_EQ(e.d, it->second) << "flip " << flip;
    }
    if (repaired->entries.size() < reference.entries.size()) {
      EXPECT_GT(report->cells_quarantined, 0u) << "flip " << flip;
    }
    // A second scrub finds nothing left to repair.
    auto again = store->Scrub();
    ASSERT_TRUE(again.ok()) << "flip " << flip;
    EXPECT_FALSE(again->snapshot_rewritten) << "flip " << flip;
    EXPECT_EQ(again->cells_quarantined, 0u) << "flip " << flip;
  }
  WriteBytes(snapshot_path, full);
}

TEST_F(ScrubTest, DamagedChunkIsQuarantinedAndTheRestSurvives) {
  // The small snapshot fits one entry chunk; a flip inside it quarantines
  // every cell while the query-log core survives intact.
  Snapshot snap = BaseSnapshot();
  {
    auto store = MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->WriteSnapshot(snap).ok());
  }
  const fs::path path = fs::path(dir_) / "snapshot.dpe";
  std::string bytes = ReadAllBytes(path);
  // Last byte sits inside the final entry chunk's payload.
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0xff);
  WriteBytes(path, bytes);

  auto store = MatrixStore::OpenExisting(dir_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->ReadSnapshot().status().code(), StatusCode::kParseError);
  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->snapshot_rewritten);
  EXPECT_FALSE(report->snapshot_unreadable);
  EXPECT_EQ(report->snapshot_chunks_quarantined, 1u);
  EXPECT_EQ(report->cells_quarantined, snap.entries.size());

  auto repaired = store->ReadSnapshot();
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->queries, snap.queries);
  EXPECT_TRUE(repaired->entries.empty());  // the one chunk was quarantined
}

TEST_F(ScrubTest, CorruptManifestIsRebuiltFromTheHighestReadableGeneration) {
  // Compact to generation 1, then smash the MANIFEST: the open must fall
  // back to scanning (same generation), and Scrub must persist the repair.
  {
    auto store = MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
    ASSERT_TRUE(store->AppendQuery(3, "SELECT d FROM t3").ok());
    auto plan = store->BeginCompaction();
    ASSERT_TRUE(plan.ok());
    auto folded = store->FoldFrozen(*plan);
    ASSERT_TRUE(folded.ok());
    auto published = store->PublishCompaction(*plan, *folded);
    ASSERT_TRUE(published.ok());
    ASSERT_TRUE(*published);
  }
  const fs::path manifest = fs::path(dir_) / "MANIFEST.dpe";
  std::string bytes = ReadAllBytes(manifest);
  bytes[bytes.size() - 2] = static_cast<char>(bytes[bytes.size() - 2] ^ 0x10);
  WriteBytes(manifest, bytes);

  auto store = MatrixStore::OpenExisting(dir_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->generation(), 1u);  // scan fallback found snapshot.1
  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->manifest_rebuilt);

  // The rebuilt manifest reads clean: a fresh open needs no fallback and a
  // fresh scrub has nothing to do.
  auto reopened = MatrixStore::OpenExisting(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->generation(), 1u);
  auto again = reopened->Scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->manifest_rebuilt);
}

TEST_F(ScrubTest, MidStreamJournalCorruptionIsQuarantinedNotReplayed) {
  std::vector<JournalRecord> originals;
  {
    auto store = MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
    for (uint32_t q = 3; q < 8; ++q) {
      ASSERT_TRUE(
          store->AppendQuery(q, "SELECT q" + std::to_string(q) + " FROM t")
              .ok());
    }
    auto journal = store->ReadJournal();
    ASSERT_TRUE(journal.ok());
    originals = *journal;
    ASSERT_EQ(originals.size(), 5u);
  }
  const fs::path path = fs::path(dir_) / "journal.dpe";
  std::string bytes = ReadAllBytes(path);
  // Flip a byte inside an early record's payload (prologue is 8 bytes, each
  // record has an 8-byte header): mid-stream, not a torn tail.
  bytes[20] = static_cast<char>(bytes[20] ^ 0x42);
  WriteBytes(path, bytes);

  auto store = MatrixStore::OpenExisting(dir_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->ReadJournal().status().code(), StatusCode::kParseError);

  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->journal_rewritten);
  EXPECT_GE(report->journal_records_quarantined, 1u);
  EXPECT_GT(report->journal_bytes_quarantined, 0u);

  // Survivors are an in-order subsequence of the original records — the
  // resync may drop neighbors of the damage but must never mint a record.
  auto survivors = store->ReadJournal();
  ASSERT_TRUE(survivors.ok()) << survivors.status();
  EXPECT_LT(survivors->size(), originals.size());
  size_t cursor = 0;
  for (const JournalRecord& got : *survivors) {
    bool matched = false;
    while (cursor < originals.size()) {
      const JournalRecord& want = originals[cursor++];
      if (got.kind == want.kind && got.index == want.index &&
          got.sql == want.sql) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "scrubbed journal contains a record that was "
                            "never appended";
  }
}

TEST_F(ScrubTest, GarbageJournalPrologueQuarantinesTheWholeFile) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  const fs::path path = fs::path(dir_) / "journal.dpe";
  WriteBytes(path, "this is not a journal at all");

  EXPECT_FALSE(store->ReadJournal().ok());
  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->journal_rewritten);
  EXPECT_EQ(report->journal_bytes_quarantined, 28u);
  EXPECT_FALSE(fs::exists(path));
  auto journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->empty());
}

TEST_F(ScrubTest, TornTailRecoveryCountsDroppedWorkInMetrics) {
  auto& dropped_records = obs::MetricsRegistry::Default().counter(
      "store.journal.dropped_records");
  auto& dropped_bytes =
      obs::MetricsRegistry::Default().counter("store.journal.dropped_bytes");
  const uint64_t records_before = dropped_records.value();
  const uint64_t bytes_before = dropped_bytes.value();

  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->AppendQuery(0, "SELECT a FROM t0").ok());
  {
    std::ofstream out(fs::path(dir_) / "journal.dpe",
                      std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00half", 8);  // a half-flushed append
  }
  auto recovery = store->RecoverJournal();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery->tail_truncated);
  EXPECT_EQ(recovery->dropped_records, 1u);
  EXPECT_EQ(recovery->dropped_bytes, 8u);
  EXPECT_EQ(dropped_records.value(), records_before + 1);
  EXPECT_EQ(dropped_bytes.value(), bytes_before + 8);
}

}  // namespace
}  // namespace dpe::store
