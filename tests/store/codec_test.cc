// Store codec: primitive round-trips, property-style random matrix / cache
// round-trips across all six built-in measures, and corruption tests — a
// truncated file, a bad magic, or any single flipped byte must surface as a
// Status error, never undefined behaviour.

#include "store/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/rng.h"
#include "engine/measure_registry.h"

namespace dpe::store {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

TEST(CodecTest, PrimitiveRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(0.25);
  w.PutString("hello");
  w.PutString(std::string("nul\0byte", 8));
  w.PutString("");

  Reader r(w.buffer());
  auto u8 = r.ReadU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 0xAB);
  auto u32 = r.ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  auto u64 = r.ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789ABCDEFull);
  auto d = r.ReadDouble();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0.25);
  auto s1 = r.ReadString();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, "hello");
  auto s2 = r.ReadString();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, std::string("nul\0byte", 8));
  auto s3 = r.ReadString();
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, "");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(CodecTest, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (double v : values) {
    Writer w;
    w.PutDouble(v);
    Reader r(w.buffer());
    auto got = r.ReadDouble();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(*got), std::bit_cast<uint64_t>(v));
  }
}

TEST(CodecTest, ReadsOnEmptyInputAreErrorsNotUB) {
  Reader r("");
  EXPECT_EQ(r.ReadU8().status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.ReadU32().status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.ReadU64().status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.ReadDouble().status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kParseError);
}

TEST(CodecTest, StringLengthBeyondInputIsError) {
  Writer w;
  w.PutU32(1000);  // declares 1000 bytes, provides 3
  w.PutRaw("abc");
  Reader r(w.buffer());
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kParseError);
}

TEST(CodecTest, Crc32KnownVector) {
  // The classic IEEE test vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(CodecTest, MatrixRoundTripRandomProperty) {
  Rng rng(2026);
  for (size_t trial = 0; trial < 25; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextBelow(21));  // 0..20
    distance::DistanceMatrix m(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        m.set(i, j, rng.NextDouble());
      }
    }
    Writer w;
    EncodeMatrix(m, &w);
    Reader r(w.buffer());
    auto decoded = DecodeMatrix(&r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_TRUE(r.AtEnd());
    ASSERT_EQ(decoded->size(), n);
    auto diff = distance::DistanceMatrix::MaxAbsDifference(m, *decoded);
    ASSERT_TRUE(diff.ok());
    EXPECT_EQ(*diff, 0.0);
  }
}

TEST(CodecTest, MatrixDeclaringHugeSizeIsRejectedBeforeAllocating) {
  Writer w;
  w.PutU64(1ull << 40);  // a petabyte-scale matrix in an 8-byte payload
  Reader r(w.buffer());
  EXPECT_EQ(DecodeMatrix(&r).status().code(), StatusCode::kParseError);
}

TEST(CodecTest, CacheEntriesRoundTripAcrossAllSixMeasures) {
  const std::vector<std::string> measures =
      engine::MeasureRegistry::WithBuiltins().Names();
  ASSERT_EQ(measures.size(), 6u);

  Rng rng(7);
  std::vector<CacheEntry> entries;
  for (const std::string& measure : measures) {
    for (size_t k = 0; k < 40; ++k) {
      CacheEntry e;
      e.measure = measure;
      e.i = static_cast<uint32_t>(rng.NextBelow(100));
      e.j = static_cast<uint32_t>(rng.NextBelow(100));
      e.d = rng.NextDouble();
      entries.push_back(std::move(e));
    }
  }
  Writer w;
  EncodeCacheEntries(entries, &w);
  Reader r(w.buffer());
  auto decoded = DecodeCacheEntries(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(*decoded, entries);
}

TEST(CodecTest, CacheEntriesHugeNameCountIsRejectedBeforeAllocating) {
  Writer w;
  w.PutU32(0xFFFFFFFFu);  // ~4 billion names in a 4-byte payload
  Reader r(w.buffer());
  EXPECT_EQ(DecodeCacheEntries(&r).status().code(), StatusCode::kParseError);
}

TEST(CodecTest, CacheEntriesBadNameIndexIsError) {
  Writer w;
  w.PutU32(1);          // one name
  w.PutString("token");
  w.PutU64(1);          // one entry
  w.PutU32(5);          // ...referencing name #5
  w.PutU32(0);
  w.PutU32(1);
  w.PutDouble(0.5);
  Reader r(w.buffer());
  EXPECT_EQ(DecodeCacheEntries(&r).status().code(), StatusCode::kParseError);
}

TEST(CodecTest, SnapshotMetaRoundTrip) {
  SnapshotMeta meta;
  meta.query_count = 123;
  meta.measures = {"access-area", "token"};
  Writer w;
  EncodeSnapshotMeta(meta, &w);
  Reader r(w.buffer());
  auto decoded = DecodeSnapshotMeta(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, meta);
}

TEST(CodecTest, FramedFileRoundTrip) {
  const std::string path = TempPath("codec_frame.dpe");
  const std::string payload = "some payload bytes \x01\x02\x03";
  ASSERT_TRUE(WriteFramedFile(path, kSnapshotMagic, payload).ok());
  auto read = ReadFramedFile(path, kSnapshotMagic);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
}

TEST(CodecTest, MissingFramedFileIsNotFound) {
  auto read = ReadFramedFile(TempPath("codec_nonexistent.dpe"), kSnapshotMagic);
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(CodecTest, WrongMagicIsError) {
  const std::string path = TempPath("codec_magic.dpe");
  ASSERT_TRUE(WriteFramedFile(path, kSnapshotMagic, "payload").ok());
  EXPECT_EQ(ReadFramedFile(path, kJournalMagic).status().code(),
            StatusCode::kParseError);
}

TEST(CodecTest, TruncatedFramedFileIsError) {
  const std::string path = TempPath("codec_trunc.dpe");
  ASSERT_TRUE(WriteFramedFile(path, kSnapshotMagic, "0123456789").ok());
  // Chop k bytes off the end for every possible k > 0.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  for (size_t keep = 0; keep < data.size(); ++keep) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(keep));
    out.close();
    auto read = ReadFramedFile(path, kSnapshotMagic);
    EXPECT_FALSE(read.ok()) << "truncation to " << keep << " bytes accepted";
  }
}

TEST(CodecTest, EverySingleByteFlipIsDetected) {
  const std::string path = TempPath("codec_flip.dpe");
  Writer payload;
  payload.PutString("snapshot-ish payload");
  payload.PutU64(42);
  ASSERT_TRUE(WriteFramedFile(path, kSnapshotMagic, payload.buffer()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  for (size_t pos = 0; pos < data.size(); ++pos) {
    std::string corrupted = data;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    out.close();
    auto read = ReadFramedFile(path, kSnapshotMagic);
    EXPECT_FALSE(read.ok()) << "flip at byte " << pos << " accepted";
  }
}

TEST(CodecTest, RecordFramingRoundTripAndTornTail) {
  std::string log;
  AppendRecord("first", &log);
  AppendRecord("", &log);
  AppendRecord("third record", &log);
  auto records = SplitRecords(log);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0], "first");
  EXPECT_EQ((*records)[1], "");
  EXPECT_EQ((*records)[2], "third record");

  // A torn tail (partial append before a crash) must be a ParseError for
  // every possible cut point inside the last record.
  const size_t before_third = log.size() - (8 + 12);
  for (size_t cut = before_third + 1; cut < log.size(); ++cut) {
    auto torn = SplitRecords(std::string_view(log).substr(0, cut));
    EXPECT_FALSE(torn.ok()) << "cut at " << cut << " accepted";
  }

  // Flipping any payload or header byte of a record is detected too.
  for (size_t pos = 0; pos < log.size(); ++pos) {
    std::string corrupted = log;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x01);
    EXPECT_FALSE(SplitRecords(corrupted).ok()) << "flip at " << pos;
  }
}

}  // namespace
}  // namespace dpe::store
