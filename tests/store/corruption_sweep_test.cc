// Kill-at-every-byte sweeps: a writer killed after any byte prefix of a
// shard frame or a lease file must leave state every reader handles with a
// typed Status (or protocol-neutral behavior), never UB, a crash, or a
// silently wrong merge. This is the exhaustive version of what
// bench_multihost's scripted die-mid-frame-write does probabilistically.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/tiles.h"
#include "engine/driver.h"
#include "engine/shard.h"
#include "store/matrix_store.h"

namespace dpe::store {
namespace {

namespace fs = std::filesystem;

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const char* data, size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data, static_cast<std::streamsize>(size));
  ASSERT_TRUE(out.good()) << path;
}

class CorruptionSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("corruption_sweep_" + std::string(::testing::UnitTest::GetInstance()
                                                   ->current_test_info()
                                                   ->name())))
               .string();
    fs::remove_all(dir_);
  }

  // A small but real shard file: the full tile range of a 6x6 build.
  ShardManifest WriteWholeMatrixShard(MatrixStore& store) {
    ShardManifest manifest;
    manifest.matrix = "token";
    manifest.shard_index = 0;
    manifest.shard_count = 1;
    manifest.n = 6;
    manifest.block = 2;
    manifest.tile_begin = 0;
    manifest.tile_end = common::TileCount(6, 2);
    auto count = ShardCellCount(manifest);
    EXPECT_TRUE(count.ok());
    std::vector<double> cells(*count);
    for (size_t i = 0; i < cells.size(); ++i) {
      cells[i] = 0.25 * static_cast<double>(i);
    }
    EXPECT_TRUE(store.WriteShardCells(manifest, cells).ok());
    return manifest;
  }

  std::string dir_;
};

TEST_F(CorruptionSweepTest, ShardFrameTruncatedAtEveryByteIsATypedError) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  WriteWholeMatrixShard(*store);

  const std::string path = dir_ + "/shard-token-0of1.dpe";
  const std::vector<char> whole = ReadAllBytes(path);
  ASSERT_GT(whole.size(), 0u);

  // Every proper prefix — the file a writer killed after byte L leaves
  // behind (had the export not gone through a tmp; legacy paths and torn
  // filesystems can still produce this).
  for (size_t len = 0; len < whole.size(); ++len) {
    WriteBytes(path, whole.data(), len);
    auto shard = store->ReadShard("token", 0, 1);
    ASSERT_FALSE(shard.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(shard.status().code(), StatusCode::kParseError)
        << "prefix " << len << ": " << shard.status();
  }

  // And the intact file still round-trips after the sweep.
  WriteBytes(path, whole.data(), whole.size());
  auto shard = store->ReadShard("token", 0, 1);
  ASSERT_TRUE(shard.ok()) << shard.status();
  EXPECT_EQ(shard->manifest.tile_end, common::TileCount(6, 2));
}

TEST_F(CorruptionSweepTest, TruncatedShardNeverReachesAMergedMatrix) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  WriteWholeMatrixShard(*store);

  const std::string path = dir_ + "/shard-token-0of1.dpe";
  const std::vector<char> whole = ReadAllBytes(path);
  engine::ShardCoordinator coordinator;

  // Sample the sweep at a stride for the (much more expensive) full-merge
  // entry point; the byte-exhaustive pass above covers the decoder itself.
  for (size_t len = 0; len < whole.size(); len += 7) {
    WriteBytes(path, whole.data(), len);
    auto merged = coordinator.Merge(*store, "token", 1, 6);
    ASSERT_FALSE(merged.ok()) << "prefix of " << len << " bytes merged";
    EXPECT_EQ(merged.status().code(), StatusCode::kParseError);
  }
}

TEST_F(CorruptionSweepTest, LeaseFileTruncatedAtEveryByteKeepsTheProtocol) {
  fs::create_directories(dir_);
  engine::DirectoryLeaseBoard::Options options;
  options.dir = dir_;
  options.matrix = "token";
  options.shard_count = 1;
  options.ttl_ms = 60000;
  options.host = "holder";
  auto holder = engine::DirectoryLeaseBoard::Open(options);
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(*(*holder)->TryAcquire(0));

  options.host = "rival";
  auto rival = engine::DirectoryLeaseBoard::Open(options);
  ASSERT_TRUE(rival.ok());

  const std::string path = (*holder)->LeasePath(0);
  const std::vector<char> whole = ReadAllBytes(path);
  ASSERT_GT(whole.size(), 0u);

  for (size_t len = 0; len < whole.size(); ++len) {
    WriteBytes(path, whole.data(), len);  // torn heartbeat rewrite
    // Exclusion holds: the file exists and its mtime is fresh, so content
    // damage must not let a rival in.
    auto acquired = (*rival)->TryAcquire(0);
    ASSERT_TRUE(acquired.ok()) << acquired.status();
    EXPECT_FALSE(*acquired) << "rival stole through a torn lease, len " << len;
    // Observability degrades gracefully: the row is held+fresh, identity
    // fields fall back to defaults instead of erroring.
    auto table = (*rival)->Snapshot();
    ASSERT_TRUE(table.ok()) << table.status();
    ASSERT_EQ(table->size(), 1u);
    EXPECT_TRUE((*table)[0].held);
    EXPECT_TRUE((*table)[0].fresh);
  }

  // The real holder can still renew and release through the damage.
  EXPECT_TRUE((*holder)->Renew(0).ok());
  EXPECT_TRUE((*holder)->Release(0).ok());
  EXPECT_TRUE(*(*rival)->TryAcquire(0)) << "released lease is takeable again";
}

TEST_F(CorruptionSweepTest, ResidualTmpFilesAreInvisibleToReaders) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  WriteWholeMatrixShard(*store);

  // Torn tmp files a killed exporter leaves behind: one next to a real
  // shard, one for a shard that never landed at all.
  WriteBytes(dir_ + "/shard-token-0of1.dpe.tmp.4242.0", "garbage", 7);
  WriteBytes(dir_ + "/shard-token-1of2.dpe.tmp.4242.1", "garbage", 7);

  EXPECT_TRUE(store->HasShard("token", 0, 1));
  EXPECT_FALSE(store->HasShard("token", 1, 2))
      << "a torn tmp must not count as a landed shard";
  auto shard = store->ReadShard("token", 0, 1);
  ASSERT_TRUE(shard.ok()) << shard.status();
  EXPECT_EQ(store->ReadShard("token", 1, 2).status().code(),
            StatusCode::kNotFound);

  engine::ShardCoordinator coordinator;
  auto merged = coordinator.Merge(*store, "token", 1, 6);
  EXPECT_TRUE(merged.ok()) << merged.status();
}

TEST_F(CorruptionSweepTest, ZeroLengthShardFrameIsATornExportError) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  fs::create_directories(dir_);
  WriteBytes(dir_ + "/shard-token-0of1.dpe", "", 0);

  auto shard = store->ReadShard("token", 0, 1);
  ASSERT_FALSE(shard.ok());
  EXPECT_EQ(shard.status().code(), StatusCode::kParseError);
  EXPECT_NE(std::string(shard.status().message()).find("zero-length"),
            std::string::npos)
      << shard.status();
}

}  // namespace
}  // namespace dpe::store
