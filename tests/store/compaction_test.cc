// Online compaction: fold-and-publish semantics plus the crash matrix.
//
// The contract under test (matrix_store.h, "Online compaction"): a
// BeginCompaction/FoldFrozen/PublishCompaction cycle folds the frozen
// journal into snapshot generation g+1 while appends continue into the
// rotated journal — and a kill at ANY fault point (or any byte of the
// MANIFEST) recovers to either the old or the new generation with the
// exact same materialized state, never a mix. The fork-based crash tests
// arm common/fault.h die points in a child process and assert the parent
// can reopen, see the reference state bit-for-bit, and compact again.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "store/matrix_store.h"

namespace dpe::store {
namespace {

namespace fs = std::filesystem;

std::string ReadAllBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Generation-independent view of a store directory: the query log plus
/// every cached cell, after snapshot read + full journal replay. Two
/// directories holding "the same state" compare equal here no matter which
/// generation (or how much journal tail) each one carries it in.
struct MaterializedState {
  std::vector<std::string> queries;
  std::map<std::tuple<std::string, uint32_t, uint32_t>, double> cells;

  bool operator==(const MaterializedState&) const = default;
};

std::tuple<std::string, uint32_t, uint32_t> CellKey(const std::string& measure,
                                                    uint32_t a, uint32_t b) {
  return {measure, std::min(a, b), std::max(a, b)};
}

Result<MaterializedState> Materialize(const std::string& dir) {
  auto store = MatrixStore::OpenExisting(dir);
  if (!store.ok()) return store.status();
  MaterializedState state;
  auto snapshot = store->ReadSnapshot();
  if (snapshot.ok()) {
    state.queries = snapshot->queries;
    for (const CacheEntry& entry : snapshot->entries) {
      state.cells[CellKey(entry.measure, entry.i, entry.j)] = entry.d;
    }
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }
  auto journal = store->ReadJournal();
  if (!journal.ok()) return journal.status();
  for (const JournalRecord& record : *journal) {
    if (record.kind == JournalRecord::Kind::kQueryAppended) {
      if (record.index < state.queries.size()) continue;  // replayed duplicate
      if (record.index > state.queries.size()) {
        return Status::Internal("journal query gap at index " +
                                std::to_string(record.index));
      }
      state.queries.push_back(record.sql);
    } else {
      for (const auto& [col, d] : record.cols) {
        state.cells[CellKey(record.measure, col, record.row)] = d;
      }
    }
  }
  return state;
}

Snapshot BaseSnapshot() {
  Snapshot snap;
  snap.queries = {"SELECT a FROM t0", "SELECT b FROM t1", "SELECT c FROM t2"};
  snap.entries = {
      CacheEntry{"token", 0, 1, 0.25},
      CacheEntry{"token", 0, 2, 0.5},
      CacheEntry{"token", 1, 2, 0.75},
      CacheEntry{"structure", 0, 1, 0.125},
  };
  return snap;
}

/// Journal tail on top of BaseSnapshot: one appended query plus its rows.
void SeedJournal(MatrixStore& store) {
  ASSERT_TRUE(store.AppendQuery(3, "SELECT d FROM t3").ok());
  ASSERT_TRUE(
      store.AppendRow("token", 3, {{0, 0.1}, {1, 0.2}, {2, 0.3}}).ok());
  ASSERT_TRUE(store.AppendRow("structure", 3, {{0, 0.4}}).ok());
}

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("compaction_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(CompactionTest, ManualCycleFoldsJournalIntoNextGeneration) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  SeedJournal(*store);
  auto plan = store->BeginCompaction();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->has_work);
  EXPECT_EQ(plan->from_gen, 0u);
  EXPECT_EQ(plan->to_gen, 1u);
  EXPECT_EQ(store->journal_generation(), 1u);

  // Appends keep landing while the fold runs — they go to the rotated
  // journal and must survive the publish untouched.
  ASSERT_TRUE(store->AppendQuery(4, "SELECT e FROM t4").ok());
  ASSERT_TRUE(store->AppendRow("token", 4, {{0, 0.9}}).ok());

  auto folded = store->FoldFrozen(*plan);
  ASSERT_TRUE(folded.ok()) << folded.status();
  EXPECT_EQ(folded->queries.size(), 4u);  // base 3 + the folded append

  auto published = store->PublishCompaction(*plan, *folded);
  ASSERT_TRUE(published.ok()) << published.status();
  EXPECT_TRUE(*published);
  EXPECT_EQ(store->generation(), 1u);
  EXPECT_EQ(store->journal_generation(), 1u);

  // Old generation swept; new generation + manifest landed; the rotated
  // journal (with the mid-compaction appends) is the active one.
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "snapshot.dpe"));
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "journal.dpe"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "snapshot.1.dpe"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "MANIFEST.dpe"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "journal.1.dpe"));

  auto state = Materialize(dir_);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_EQ(state->queries.size(), 5u);
  EXPECT_EQ(state->queries[4], "SELECT e FROM t4");
  EXPECT_EQ(state->cells.at(CellKey("token", 0, 3)), 0.1);
  EXPECT_EQ(state->cells.at(CellKey("token", 0, 4)), 0.9);
  EXPECT_EQ(state->cells.size(), 9u);
}

TEST_F(CompactionTest, BeginWithEmptyJournalHasNoWork) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  auto plan = store->BeginCompaction();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->has_work);
  // No rotation happened: the store is exactly where it was.
  EXPECT_EQ(store->generation(), 0u);
  EXPECT_EQ(store->journal_generation(), 0u);
  auto published = store->PublishCompaction(*plan, Snapshot{});
  ASSERT_TRUE(published.ok());
  EXPECT_FALSE(*published);
}

TEST_F(CompactionTest, FoldKeepsTheLatestValueForARecomputedCell) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  // The journal recomputes a cell the snapshot already holds (an evicted
  // pair rebuilt later): the fold must keep the journal's value, once.
  ASSERT_TRUE(store->AppendRow("token", 2, {{0, 0.625}}).ok());
  auto plan = store->BeginCompaction();
  ASSERT_TRUE(plan.ok());
  auto folded = store->FoldFrozen(*plan);
  ASSERT_TRUE(folded.ok()) << folded.status();
  size_t occurrences = 0;
  for (const CacheEntry& entry : folded->entries) {
    if (CellKey(entry.measure, entry.i, entry.j) == CellKey("token", 0, 2)) {
      ++occurrences;
      EXPECT_EQ(entry.d, 0.625);
    }
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST_F(CompactionTest, PublishAbortsWhenACheckpointSupersedesThePlan) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  SeedJournal(*store);
  auto plan = store->BeginCompaction();
  ASSERT_TRUE(plan.ok());
  auto folded = store->FoldFrozen(*plan);
  ASSERT_TRUE(folded.ok());

  // A full checkpoint lands while the fold was running: it already covers
  // everything the fold covered (and more), so the publish must abort.
  Snapshot superseding = *folded;
  superseding.queries.push_back("SELECT f FROM t5");
  ASSERT_TRUE(store->WriteSnapshot(superseding).ok());
  ASSERT_TRUE(store->TruncateJournal().ok());

  auto published = store->PublishCompaction(*plan, *folded);
  ASSERT_TRUE(published.ok()) << published.status();
  EXPECT_FALSE(*published) << "a stale fold must not clobber a newer "
                              "checkpoint";

  auto state = Materialize(dir_);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_EQ(state->queries.size(), 5u);
  EXPECT_EQ(state->queries.back(), "SELECT f FROM t5");
}

TEST_F(CompactionTest, ManifestTruncatedAtEveryByteStillRecoversTheFullState) {
  // Run a full compaction (with a post-rotation journal tail), then truncate
  // the MANIFEST at every possible byte: the scan fallback must resolve the
  // same generation and the materialized state must never change.
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok());
  SeedJournal(*store);
  auto plan = store->BeginCompaction();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(store->AppendQuery(4, "SELECT e FROM t4").ok());
  auto folded = store->FoldFrozen(*plan);
  ASSERT_TRUE(folded.ok());
  auto published = store->PublishCompaction(*plan, *folded);
  ASSERT_TRUE(published.ok());
  ASSERT_TRUE(*published);

  const fs::path manifest = fs::path(dir_) / "MANIFEST.dpe";
  const std::string full = ReadAllBytes(manifest);
  ASSERT_GT(full.size(), 8u);
  auto reference = Materialize(dir_);
  ASSERT_TRUE(reference.ok());

  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteBytes(manifest, full.substr(0, cut));
    auto reopened = MatrixStore::OpenExisting(dir_);
    ASSERT_TRUE(reopened.ok()) << "cut " << cut;
    EXPECT_EQ(reopened->generation(), 1u) << "cut " << cut;
    auto state = Materialize(dir_);
    ASSERT_TRUE(state.ok()) << "cut " << cut << ": " << state.status();
    EXPECT_EQ(*state, *reference) << "cut " << cut;
  }
  WriteBytes(manifest, full);
}

// -- Crash matrix -------------------------------------------------------------

/// Forked-child body: arm one die point, run a full compaction cycle, and
/// exit 0 only if the fault never fired (which fails the parent's 137
/// assertion). No gtest in the child — only _exit codes.
[[noreturn]] void RunCompactionCycleThenExit(const std::string& dir,
                                             const std::string& spec) {
  if (!common::FaultInjector::Global().Arm(spec)) _exit(10);
  auto store = MatrixStore::Open(dir);
  if (!store.ok()) _exit(11);
  auto plan = store->BeginCompaction();
  if (!plan.ok()) _exit(12);
  auto folded = store->FoldFrozen(*plan);
  if (!folded.ok()) _exit(13);
  auto published = store->PublishCompaction(*plan, *folded);
  if (!published.ok() || !*published) _exit(14);
  _exit(0);
}

class CompactionCrashTest : public CompactionTest {};

TEST_F(CompactionCrashTest, KillAtEveryFaultPointRecoversTheReferenceState) {
  // One die point per compaction step, plus a torn framed write under each
  // of the two atomic file writes the publish performs (snapshot, then
  // manifest). Every kill must leave a directory that reopens to the exact
  // reference state and still accepts appends + a follow-up compaction.
  const std::vector<std::string> kDieSpecs = {
      "store.compaction.rotate=die",
      "store.compaction.before_snapshot=die",
      "store.compaction.after_snapshot=die",
      "store.compaction.after_manifest=die",
      "store.compaction.before_cleanup=die",
      "store.frame.mid_write=die",    // torn snapshot.<g+1> tmp
      "store.frame.mid_write=die@2",  // torn MANIFEST tmp
  };
  int case_index = 0;
  for (const std::string& spec : kDieSpecs) {
    const std::string dir =
        (fs::path(dir_) / ("case_" + std::to_string(case_index++))).string();
    {
      auto store = MatrixStore::Open(dir);
      ASSERT_TRUE(store.ok()) << spec;
      ASSERT_TRUE(store->WriteSnapshot(BaseSnapshot()).ok()) << spec;
      SeedJournal(*store);
    }
    auto reference = Materialize(dir);
    ASSERT_TRUE(reference.ok()) << spec;

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << spec;
    if (pid == 0) RunCompactionCycleThenExit(dir, spec);
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid) << spec;
    ASSERT_TRUE(WIFEXITED(wstatus)) << spec;
    ASSERT_EQ(WEXITSTATUS(wstatus), 137) << spec << ": the fault point "
                                                    "never fired";

    // Recovery: the exact pre-crash state, whichever generation carries it.
    auto recovered = Materialize(dir);
    ASSERT_TRUE(recovered.ok()) << spec << ": " << recovered.status();
    EXPECT_EQ(*recovered, *reference) << spec;

    // The survivor is not a dead end: append, compact fully, recheck.
    auto reopened = MatrixStore::OpenExisting(dir);
    ASSERT_TRUE(reopened.ok()) << spec;
    const auto next_index = static_cast<uint32_t>(reference->queries.size());
    ASSERT_TRUE(reopened->AppendQuery(next_index, "SELECT z FROM t9").ok())
        << spec;
    auto plan = reopened->BeginCompaction();
    ASSERT_TRUE(plan.ok()) << spec;
    ASSERT_TRUE(plan->has_work) << spec;
    auto folded = reopened->FoldFrozen(*plan);
    ASSERT_TRUE(folded.ok()) << spec << ": " << folded.status();
    auto published = reopened->PublishCompaction(*plan, *folded);
    ASSERT_TRUE(published.ok()) << spec << ": " << published.status();
    EXPECT_TRUE(*published) << spec;
    EXPECT_GE(reopened->generation(), 1u) << spec;

    MaterializedState expected = *reference;
    expected.queries.push_back("SELECT z FROM t9");
    auto final_state = Materialize(dir);
    ASSERT_TRUE(final_state.ok()) << spec;
    EXPECT_EQ(*final_state, expected) << spec;
  }
}

}  // namespace
}  // namespace dpe::store
