// MatrixStore: snapshot + journal round-trips, reopen persistence,
// truncation, standalone matrix files, and corruption handling.

#include "store/matrix_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "common/tiles.h"

namespace dpe::store {
namespace {

namespace fs = std::filesystem;

class MatrixStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("matrix_store_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

Snapshot MakeSnapshot() {
  Snapshot s;
  s.queries = {"SELECT a FROM t WHERE a = 1;", "SELECT b FROM t WHERE b = 2;"};
  s.entries = {{"token", 0, 1, 0.5}, {"structure", 0, 1, 0.25}};
  return s;
}

TEST_F(MatrixStoreTest, OpenCreatesDirectory) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(fs::is_directory(dir_));
  EXPECT_FALSE(store->HasSnapshot());
  EXPECT_EQ(store->ReadSnapshot().status().code(), StatusCode::kNotFound);
  auto journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->empty());
}

TEST_F(MatrixStoreTest, OpenExistingNeverCreates) {
  EXPECT_EQ(MatrixStore::OpenExisting(dir_).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(fs::exists(dir_));
  ASSERT_TRUE(MatrixStore::Open(dir_).ok());
  EXPECT_TRUE(MatrixStore::OpenExisting(dir_).ok());
}

TEST_F(MatrixStoreTest, OpenFailsOnFilePath) {
  std::ofstream out(dir_);  // occupy the path with a regular file
  out << "not a directory";
  out.close();
  auto store = MatrixStore::Open(dir_);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MatrixStoreTest, OpenErrorSurfacesOsErrorText) {
  // A path *under* a regular file cannot be created; the Status must carry
  // the OS error text so operators can tell permission problems from typos.
  std::ofstream out(dir_);
  out << "file";
  out.close();
  auto store = MatrixStore::Open((fs::path(dir_) / "sub").string());
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  // ec.message() is platform-worded; any non-empty suffix after the path
  // counts. "cannot create directory <path>: <os text>".
  const std::string& message = store.status().message();
  const size_t colon = message.rfind(": ");
  ASSERT_NE(colon, std::string::npos) << message;
  EXPECT_GT(message.size(), colon + 2) << message;
}

TEST_F(MatrixStoreTest, SnapshotRoundTrip) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Snapshot written = MakeSnapshot();
  ASSERT_TRUE(store->WriteSnapshot(written).ok());
  EXPECT_TRUE(store->HasSnapshot());

  auto read = store->ReadSnapshot();
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->queries, written.queries);
  EXPECT_EQ(read->entries, written.entries);
}

TEST_F(MatrixStoreTest, SnapshotOverwriteReplacesAtomically) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(MakeSnapshot()).ok());
  Snapshot second;
  second.queries = {"SELECT c FROM u WHERE c < 9;"};
  ASSERT_TRUE(store->WriteSnapshot(second).ok());
  auto read = store->ReadSnapshot();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->queries, second.queries);
  EXPECT_TRUE(read->entries.empty());
}

TEST_F(MatrixStoreTest, JournalAppendReadTruncate) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->AppendQuery(2, "SELECT a FROM t WHERE a = 3;").ok());
  ASSERT_TRUE(store->AppendRow("token", 2, {{0, 0.1}, {1, 0.9}}).ok());
  ASSERT_TRUE(store->AppendQuery(3, "SELECT b FROM t WHERE b = 4;").ok());

  auto records = store->ReadJournal();
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].kind, JournalRecord::Kind::kQueryAppended);
  EXPECT_EQ((*records)[0].index, 2u);
  EXPECT_EQ((*records)[0].sql, "SELECT a FROM t WHERE a = 3;");
  EXPECT_EQ((*records)[1].kind, JournalRecord::Kind::kRowComputed);
  EXPECT_EQ((*records)[1].measure, "token");
  EXPECT_EQ((*records)[1].row, 2u);
  ASSERT_EQ((*records)[1].cols.size(), 2u);
  EXPECT_EQ((*records)[1].cols[0], (std::pair<uint32_t, double>{0, 0.1}));
  EXPECT_EQ((*records)[1].cols[1], (std::pair<uint32_t, double>{1, 0.9}));
  EXPECT_EQ((*records)[2].index, 3u);

  ASSERT_TRUE(store->TruncateJournal().ok());
  auto after = store->ReadJournal();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
}

TEST_F(MatrixStoreTest, JournalSurvivesReopen) {
  {
    auto store = MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->WriteSnapshot(MakeSnapshot()).ok());
    ASSERT_TRUE(store->AppendRow("token", 1, {{0, 0.75}}).ok());
  }
  auto reopened = MatrixStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->HasSnapshot());
  auto records = reopened->ReadJournal();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].measure, "token");
}

TEST_F(MatrixStoreTest, CorruptJournalTailIsParseError) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->AppendRow("token", 1, {{0, 0.75}}).ok());
  // Simulate a torn append: write half a record's worth of garbage.
  std::ofstream out(fs::path(dir_) / "journal.dpe",
                    std::ios::binary | std::ios::app);
  out.write("\x10\x00\x00\x00garbage", 11);
  out.close();
  EXPECT_EQ(store->ReadJournal().status().code(), StatusCode::kParseError);
}

TEST_F(MatrixStoreTest, RecoverJournalDropsTornTailAndRepairsFile) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->AppendRow("token", 1, {{0, 0.75}}).ok());
  ASSERT_TRUE(store->AppendQuery(2, "SELECT a FROM t WHERE a = 1;").ok());
  const auto intact_size = fs::file_size(fs::path(dir_) / "journal.dpe");

  // Crash mid-append: any cut point inside a third record must recover to
  // exactly the two intact records.
  ASSERT_TRUE(store->AppendRow("token", 2, {{0, 0.1}, {1, 0.2}}).ok());
  std::ifstream in(fs::path(dir_) / "journal.dpe", std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  for (size_t cut = intact_size + 1; cut < full.size(); ++cut) {
    std::ofstream out(fs::path(dir_) / "journal.dpe",
                      std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto recovered = store->RecoverJournal();
    ASSERT_TRUE(recovered.ok()) << "cut at " << cut << ": "
                                << recovered.status();
    ASSERT_EQ(recovered->records.size(), 2u) << "cut at " << cut;
    // The recovery accounts for the tear: one partial record, and exactly
    // the bytes between the cut and the intact prefix.
    EXPECT_TRUE(recovered->tail_truncated) << "cut at " << cut;
    EXPECT_EQ(recovered->dropped_records, 1u) << "cut at " << cut;
    EXPECT_EQ(recovered->dropped_bytes, cut - intact_size) << "cut at " << cut;
    EXPECT_EQ(fs::file_size(fs::path(dir_) / "journal.dpe"), intact_size);
    // The repaired journal is fully valid again for the strict reader and
    // for further appends.
    auto strict = store->ReadJournal();
    ASSERT_TRUE(strict.ok());
    EXPECT_EQ(strict->size(), 2u);
  }
  ASSERT_TRUE(store->AppendRow("token", 3, {{0, 0.5}}).ok());
  auto after_append = store->ReadJournal();
  ASSERT_TRUE(after_append.ok());
  EXPECT_EQ(after_append->size(), 3u);

  // An intact journal recovers with nothing dropped and nothing reported.
  auto clean = store->RecoverJournal();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->records.size(), 3u);
  EXPECT_FALSE(clean->tail_truncated);
  EXPECT_EQ(clean->dropped_records, 0u);
  EXPECT_EQ(clean->dropped_bytes, 0u);
}

TEST_F(MatrixStoreTest, RecoverJournalHandlesHeaderStub) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  // A crash inside the very first append can leave fewer than the 8 header
  // bytes on disk. Strict read errors; recovery clears the stub.
  std::ofstream out(fs::path(dir_) / "journal.dpe", std::ios::binary);
  out.write("\x44\x50\x45", 3);
  out.close();
  EXPECT_EQ(store->ReadJournal().status().code(), StatusCode::kParseError);
  auto recovered = store->RecoverJournal();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->records.empty());
  EXPECT_TRUE(recovered->tail_truncated);
  EXPECT_EQ(recovered->dropped_records, 1u);  // the in-flight append
  EXPECT_EQ(recovered->dropped_bytes, 3u);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "journal.dpe"));
  // Appends start a clean journal afterwards.
  ASSERT_TRUE(store->AppendRow("token", 1, {{0, 0.5}}).ok());
  auto after = store->ReadJournal();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
}

TEST_F(MatrixStoreTest, FlippedSnapshotByteIsParseError) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->WriteSnapshot(MakeSnapshot()).ok());
  const std::string path = (fs::path(dir_) / "snapshot.dpe").string();
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x20);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  EXPECT_FALSE(store->ReadSnapshot().ok());
}

TEST_F(MatrixStoreTest, StandaloneMatrixRoundTrip) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Rng rng(5);
  distance::DistanceMatrix m(17);
  for (size_t i = 0; i < 17; ++i) {
    for (size_t j = i + 1; j < 17; ++j) {
      m.set(i, j, rng.NextDouble());
    }
  }
  ASSERT_TRUE(store->WriteMatrix("token", m).ok());
  auto read = store->ReadMatrix("token");
  ASSERT_TRUE(read.ok()) << read.status();
  auto diff = distance::DistanceMatrix::MaxAbsDifference(m, *read);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0.0);

  EXPECT_EQ(store->ReadMatrix("structure").status().code(),
            StatusCode::kNotFound);
}

TEST_F(MatrixStoreTest, UpperTriangleHooksRoundTrip) {
  distance::DistanceMatrix m(5);
  double v = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      m.set(i, j, v += 0.1);
    }
  }
  std::vector<double> upper = m.UpperTriangle();
  EXPECT_EQ(upper.size(), 10u);
  auto rebuilt = distance::DistanceMatrix::FromUpperTriangle(5, upper);
  ASSERT_TRUE(rebuilt.ok());
  auto diff = distance::DistanceMatrix::MaxAbsDifference(m, *rebuilt);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0.0);

  EXPECT_EQ(distance::DistanceMatrix::FromUpperTriangle(4, upper)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

ShardManifest MakeManifest(uint32_t index, uint32_t count, uint64_t n) {
  ShardManifest m;
  m.matrix = "token";
  m.shard_index = index;
  m.shard_count = count;
  m.n = n;
  m.block = 4;
  m.tile_begin = index;  // not cross-validated here; the coordinator does
  m.tile_end = index + 1;
  return m;
}

/// The owned cells of `partial` under `manifest`, in tile-schedule order —
/// the reference extraction ReadShard's payload must match.
std::vector<double> OwnedCells(const ShardManifest& manifest,
                               const distance::DistanceMatrix& partial) {
  std::vector<double> cells;
  const auto tiles = common::TileSchedule(manifest.n, manifest.block);
  const uint64_t end = std::min<uint64_t>(manifest.tile_end, tiles.size());
  for (uint64_t t = manifest.tile_begin; t < end; ++t) {
    common::ForEachTileCell(
        manifest.n, manifest.block, tiles[t].first, tiles[t].second,
        [&](size_t i, size_t j) { cells.push_back(partial.at(i, j)); });
  }
  return cells;
}

TEST_F(MatrixStoreTest, ShardRoundTrip) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Rng rng(11);
  distance::DistanceMatrix partial(9);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 9; ++j) {
      partial.set(i, j, rng.NextDouble());
    }
  }
  const ShardManifest manifest = MakeManifest(1, 3, 9);
  ASSERT_TRUE(store->WriteShard(manifest, partial).ok());

  auto read = store->ReadShard("token", 1, 3);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->manifest, manifest);
  // Sparse payload: exactly the owned cells, in schedule order.
  EXPECT_EQ(read->cells, OwnedCells(manifest, partial));
  auto expected_count = ShardCellCount(manifest);
  ASSERT_TRUE(expected_count.ok());
  EXPECT_EQ(read->cells.size(), *expected_count);

  // Other coordinates are distinct files.
  EXPECT_EQ(store->ReadShard("token", 0, 3).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store->ReadShard("token", 1, 4).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store->ReadShard("structure", 1, 3).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MatrixStoreTest, SparseShardFilesOmitUnownedCells) {
  // A shard owning one tile of a 32-query matrix must not pay for the full
  // n(n-1)/2 upper triangle the dense v1 format carried.
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  distance::DistanceMatrix partial(32);
  ShardManifest manifest = MakeManifest(0, 4, 32);  // tiles [0, 1), block 4
  ASSERT_TRUE(store->WriteShard(manifest, partial).ok());
  const auto size = fs::file_size(fs::path(dir_) / "shard-token-0of4.dpe");
  const uintmax_t dense_payload = 32 * 31 / 2 * 8;
  EXPECT_LT(size, dense_payload / 4);
  // And the owned-cell count is the deterministic manifest-derived one:
  // tile (0,0) of block 4 holds 4*3/2 = 6 cells.
  auto count = ShardCellCount(manifest);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
}

TEST_F(MatrixStoreTest, LegacyDenseV1ShardFrameStillReads) {
  // Fabricate the exact bytes a pre-sparse build wrote: a version-1 "DPEH"
  // frame holding manifest + dense upper triangle. ReadShard must decode it
  // and surface the same owned cells a sparse write would.
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Rng rng(23);
  distance::DistanceMatrix partial(9);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = i + 1; j < 9; ++j) partial.set(i, j, rng.NextDouble());
  }
  const ShardManifest manifest = MakeManifest(1, 3, 9);
  Writer w;
  EncodeShardManifest(manifest, &w);
  EncodeMatrix(partial, &w);
  const std::string path = (fs::path(dir_) / "shard-token-1of3.dpe").string();
  ASSERT_TRUE(
      WriteFramedFile(path, kShardMagic, w.buffer(), /*version=*/1).ok());

  auto read = store->ReadShard("token", 1, 3);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->manifest, manifest);
  EXPECT_EQ(read->cells, OwnedCells(manifest, partial));
}

TEST_F(MatrixStoreTest, SparseShardCellCountMismatchIsParseError) {
  // A CRC-valid sparse frame whose declared cell count disagrees with what
  // the manifest's tile range owns must be rejected before any cell lands.
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const ShardManifest manifest = MakeManifest(0, 1, 9);  // owns 6 cells
  Writer w;
  EncodeShardManifest(manifest, &w);
  w.PutU64(3);  // lies about the count
  for (int k = 0; k < 3; ++k) w.PutDouble(0.5);
  const std::string path = (fs::path(dir_) / "shard-token-0of1.dpe").string();
  ASSERT_TRUE(WriteFramedFile(path, kShardMagic, w.buffer(),
                              kShardFormatVersion)
                  .ok());
  auto read = store->ReadShard("token", 0, 1);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kParseError);
}

TEST_F(MatrixStoreTest, FsyncPolicyRoundTripsUnderEveryPolicy) {
  // The knob trades durability for latency; the bytes written must be
  // identical either way, so every policy round-trips every artifact.
  for (FsyncPolicy policy : {FsyncPolicy::kNever, FsyncPolicy::kOnCheckpoint,
                             FsyncPolicy::kAlways}) {
    const std::string dir =
        dir_ + "-fsync-" + std::to_string(static_cast<int>(policy));
    auto store = MatrixStore::Open(dir);
    ASSERT_TRUE(store.ok());
    store->set_fsync_policy(policy);
    EXPECT_EQ(store->fsync_policy(), policy);

    Snapshot snapshot;
    snapshot.queries = {"SELECT a FROM t;"};
    snapshot.entries = {{"token", 0, 1, 0.25}};
    ASSERT_TRUE(store->WriteSnapshot(snapshot).ok());
    ASSERT_TRUE(store->AppendQuery(1, "SELECT b FROM t;").ok());
    ASSERT_TRUE(store->AppendRow("token", 1, {{0, 0.5}}).ok());

    auto back = store->ReadSnapshot();
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->queries, snapshot.queries);
    auto journal = store->ReadJournal();
    ASSERT_TRUE(journal.ok()) << journal.status();
    EXPECT_EQ(journal->size(), 2u);
    fs::remove_all(dir);
  }
}

TEST_F(MatrixStoreTest, WriteShardRejectsInconsistentManifests) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  distance::DistanceMatrix partial(4);

  ShardManifest bad_index = MakeManifest(2, 2, 4);  // index >= count
  EXPECT_EQ(store->WriteShard(bad_index, partial).code(),
            StatusCode::kInvalidArgument);

  ShardManifest inverted = MakeManifest(0, 2, 4);
  inverted.tile_begin = 3;
  inverted.tile_end = 1;
  EXPECT_EQ(store->WriteShard(inverted, partial).code(),
            StatusCode::kInvalidArgument);

  ShardManifest wrong_n = MakeManifest(0, 2, 7);  // partial is 4 x 4
  EXPECT_EQ(store->WriteShard(wrong_n, partial).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MatrixStoreTest, FlippedShardByteIsParseError) {
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  distance::DistanceMatrix partial(6);
  partial.set(0, 1, 0.5);
  ASSERT_TRUE(store->WriteShard(MakeManifest(0, 1, 6), partial).ok());

  const std::string path = (fs::path(dir_) / "shard-token-0of1.dpe").string();
  ASSERT_TRUE(fs::exists(path));
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Flip every byte position in turn: all must surface as a typed error.
  for (size_t pos = 0; pos < data.size(); ++pos) {
    std::string flipped = data;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    out.close();
    auto read = store->ReadShard("token", 0, 1);
    ASSERT_FALSE(read.ok()) << "flipped byte " << pos;
    EXPECT_EQ(read.status().code(), StatusCode::kParseError)
        << "flipped byte " << pos;
  }
}

TEST_F(MatrixStoreTest, ShardFileRenamedToOtherCoordinatesIsParseError) {
  // A shard file moved (or copied) under another shard's name must be
  // rejected by the manifest identity check, not silently merged.
  auto store = MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  distance::DistanceMatrix partial(4);
  ASSERT_TRUE(store->WriteShard(MakeManifest(0, 2, 4), partial).ok());
  fs::rename(fs::path(dir_) / "shard-token-0of2.dpe",
             fs::path(dir_) / "shard-token-1of2.dpe");
  auto read = store->ReadShard("token", 1, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace dpe::store
