// End-to-end kill/restart round-trip (the acceptance criterion of the
// persistent store): build a matrix for N logs, SaveCheckpoint, reload in a
// fresh Engine, append M new logs, and the incrementally-completed matrix
// must be bit-identical to a cold build over N+M logs — while the journal
// shows only the new rows were computed and the LRU cache never exceeds its
// byte budget. A second restart then replays the journal and rebuilds with
// zero recomputation.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "engine/engine.h"
#include "sql/printer.h"
#include "store/matrix_store.h"
#include "tests/scenario_test_util.h"
#include "workload/scenarios.h"

namespace dpe::engine {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectBitIdentical;
using testutil::Shop;

constexpr size_t kInitial = 18;  // N
constexpr size_t kAppended = 6;  // M
constexpr size_t kTotal = kInitial + kAppended;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("checkpoint_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(CheckpointTest, KillRestartRoundTripIsBitIdenticalAndIncremental) {
  workload::Scenario s = Shop(42, kTotal);
  // Budget with finite headroom: holds every pair of the full log (plus the
  // second measure used below), but is a real LRU bound that the test
  // checks is never exceeded.
  EngineOptions options;
  options.threads = 2;
  options.block = 8;
  options.cache_max_bytes = 3 * (kTotal * (kTotal - 1) / 2) *
                            DistanceCache::kEntryBytes;

  // --- Session 1: build over N queries, checkpoint, "die". ---
  {
    Engine engine(s.Context(), options);
    engine.SetLog({s.log.begin(), s.log.begin() + kInitial});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_FALSE(engine.checkpoint_attached());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    ASSERT_TRUE(engine.checkpoint_attached());
    EXPECT_LE(engine.cache_bytes_used(), options.cache_max_bytes);
  }

  // --- Session 2: fresh engine, restore, append M, rebuild. ---
  Engine engine2(s.Context(), options);
  ASSERT_TRUE(engine2.LoadCheckpoint(dir_).ok());
  EXPECT_EQ(engine2.log_size(), kInitial);
  EXPECT_EQ(engine2.cache_size(), kInitial * (kInitial - 1) / 2);

  for (size_t i = kInitial; i < kTotal; ++i) {
    ASSERT_TRUE(engine2.AddQuery(s.log[i]).ok());
  }
  auto incremental = engine2.BuildMatrix("token");
  ASSERT_TRUE(incremental.ok()) << incremental.status();
  EXPECT_LE(engine2.cache_bytes_used(), options.cache_max_bytes);

  // Every pre-checkpoint pair was served from the restored cache...
  EXPECT_EQ(engine2.cache_stats().hits, kInitial * (kInitial - 1) / 2);

  // ...and the result is bit-identical to a cold build over all N+M logs.
  Engine cold(s.Context(), options);
  cold.SetLog(s.log);
  auto full = cold.BuildMatrix("token");
  ASSERT_TRUE(full.ok());
  ExpectBitIdentical(*full, *incremental);

  // The journal records the appended queries and ONLY the new rows.
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok()) << journal.status();
  size_t query_records = 0, row_records = 0;
  for (const store::JournalRecord& record : *journal) {
    if (record.kind == store::JournalRecord::Kind::kQueryAppended) {
      EXPECT_GE(record.index, kInitial);
      EXPECT_LT(record.index, kTotal);
      ++query_records;
    } else {
      EXPECT_GE(record.row, kInitial) << "old row was recomputed";
      EXPECT_LT(record.row, kTotal);
      ++row_records;
    }
  }
  EXPECT_EQ(query_records, kAppended);
  EXPECT_EQ(row_records, kAppended);  // one record per new row

  // --- Session 3: another kill/restart; the journal replays, nothing is
  // recomputed, and the matrix is still bit-identical. ---
  Engine engine3(s.Context(), options);
  ASSERT_TRUE(engine3.LoadCheckpoint(dir_).ok());
  EXPECT_EQ(engine3.log_size(), kTotal);
  EXPECT_EQ(engine3.cache_size(), kTotal * (kTotal - 1) / 2);
  auto replayed = engine3.BuildMatrix("token");
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(engine3.cache_stats().misses, 0u);  // zero recomputation
  ExpectBitIdentical(*full, *replayed);
  EXPECT_LE(engine3.cache_bytes_used(), options.cache_max_bytes);
}

TEST_F(CheckpointTest, MultiMeasureCheckpointRestoresBoth) {
  workload::Scenario s = Shop(9, 12);
  Engine engine(s.Context(), {.threads = 2});
  engine.SetLog(s.log);
  auto token = engine.BuildMatrix("token");
  auto structure = engine.BuildMatrix("structure");
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(structure.ok());
  ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());

  Engine restored(s.Context(), {.threads = 2});
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  auto token2 = restored.BuildMatrix("token");
  auto structure2 = restored.BuildMatrix("structure");
  ASSERT_TRUE(token2.ok());
  ASSERT_TRUE(structure2.ok());
  EXPECT_EQ(restored.cache_stats().misses, 0u);
  ExpectBitIdentical(*token, *token2);
  ExpectBitIdentical(*structure, *structure2);
}

TEST_F(CheckpointTest, RestoredLogRoundTripsThroughSqlText) {
  workload::Scenario s = Shop(17, 10);
  Engine engine(s.Context());
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());

  Engine restored(s.Context());
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  ASSERT_EQ(restored.log_size(), s.log.size());
  for (size_t i = 0; i < s.log.size(); ++i) {
    EXPECT_EQ(sql::ToSql(restored.log()[i]), sql::ToSql(s.log[i]));
  }
}

TEST_F(CheckpointTest, LoadFromMissingDirectoryIsNotFoundAndCreatesNothing) {
  workload::Scenario s = Shop(1, 4);
  Engine engine(s.Context());
  EXPECT_EQ(engine.LoadCheckpoint(dir_).code(), StatusCode::kNotFound);
  EXPECT_FALSE(engine.checkpoint_attached());
  // A mistyped restore path must not leave directory trees behind.
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(CheckpointTest, EvictedRecomputesAreNotReJournaled) {
  workload::Scenario s = Shop(37, 10);
  EngineOptions options;
  options.cache_max_bytes = 20 * DistanceCache::kEntryBytes;  // < 45 pairs
  Engine engine(s.Context(), options);
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());

  // Each rebuild recomputes the evicted pairs; none of those rows are new,
  // so the journal must stay empty instead of growing per rebuild.
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  auto store = store::MatrixStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->empty());

  // A genuinely new row still journals exactly once.
  workload::Scenario extra = Shop(38, 1);
  ASSERT_TRUE(engine.AddQuery(extra.log[0]).ok());
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  ASSERT_TRUE(engine.BuildMatrix("token").ok());
  journal = store->ReadJournal();
  ASSERT_TRUE(journal.ok());
  size_t row_records = 0;
  for (const auto& record : *journal) {
    if (record.kind == store::JournalRecord::Kind::kRowComputed) {
      EXPECT_EQ(record.row, 10u);
      ++row_records;
    }
  }
  EXPECT_EQ(row_records, 1u);
}

TEST_F(CheckpointTest, CorruptSnapshotLeavesEngineUntouched) {
  workload::Scenario s = Shop(3, 8);
  {
    Engine engine(s.Context());
    engine.SetLog(s.log);
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
  }
  const std::string path = (fs::path(dir_) / "snapshot.dpe").string();
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() - 3] = static_cast<char>(data[data.size() - 3] ^ 0x11);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  Engine engine(s.Context());
  engine.SetLog({s.log.begin(), s.log.begin() + 2});
  Status load_status = engine.LoadCheckpoint(dir_);
  EXPECT_EQ(load_status.code(), StatusCode::kParseError) << load_status;
  // The failed load must not have clobbered the engine's state.
  EXPECT_EQ(engine.log_size(), 2u);
  EXPECT_FALSE(engine.checkpoint_attached());
}

TEST_F(CheckpointTest, LoadToleratesJournalSubsumedBySnapshot) {
  // A crash between WriteSnapshot and TruncateJournal leaves a fresh
  // snapshot next to a stale journal whose records the snapshot already
  // contains. The load must skip them, not brick the checkpoint.
  workload::Scenario s = Shop(29, 10);
  Engine cold(s.Context());
  cold.SetLog(s.log);
  auto expect = cold.BuildMatrix("token");
  ASSERT_TRUE(expect.ok());
  {
    Engine engine(s.Context());
    engine.SetLog({s.log.begin(), s.log.begin() + 8});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    ASSERT_TRUE(engine.AddQuery(s.log[8]).ok());
    ASSERT_TRUE(engine.AddQuery(s.log[9]).ok());
    ASSERT_TRUE(engine.BuildMatrix("token").ok());  // journals rows 8, 9
    // Second SaveCheckpoint writes the 10-query snapshot; simulate the
    // crash by re-appending the (now subsumed) journal records ourselves.
    // In a real crash the stale records carry the same deterministic
    // distances the snapshot already holds — replayed here verbatim.
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
  }
  {
    auto store = store::MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->AppendQuery(8, sql::ToSql(s.log[8])).ok());
    ASSERT_TRUE(store->AppendQuery(9, sql::ToSql(s.log[9])).ok());
    ASSERT_TRUE(store->AppendRow("token", 8, {{0, expect->at(0, 8)}}).ok());
  }

  Engine restored(s.Context());
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  EXPECT_EQ(restored.log_size(), 10u);

  auto got = restored.BuildMatrix("token");
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*expect, *got);
}

TEST_F(CheckpointTest, JournalRowWithColumnAboveRowIsParseError) {
  workload::Scenario s = Shop(31, 6);
  {
    Engine engine(s.Context());
    engine.SetLog(s.log);
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
  }
  {
    auto store = store::MatrixStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    // Valid CRC, nonsense content: column 4000000000 of row 5.
    ASSERT_TRUE(store->AppendRow("token", 5, {{4000000000u, 0.3}}).ok());
  }
  Engine engine(s.Context());
  EXPECT_EQ(engine.LoadCheckpoint(dir_).code(), StatusCode::kParseError);
}

TEST_F(CheckpointTest, TornJournalTailRecoversOnLoad) {
  workload::Scenario s = Shop(43, 12);
  {
    Engine engine(s.Context());
    engine.SetLog({s.log.begin(), s.log.begin() + 10});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    ASSERT_TRUE(engine.AddQuery(s.log[10]).ok());
    ASSERT_TRUE(engine.BuildMatrix("token").ok());  // journals row 10
  }
  // The process is killed halfway through its next journal append.
  std::ofstream out(fs::path(dir_) / "journal.dpe",
                    std::ios::binary | std::ios::app);
  out.write("\x40\x00\x00\x00half", 8);
  out.close();

  Engine restored(s.Context());
  CheckpointLoadReport report;
  ASSERT_TRUE(restored.LoadCheckpoint(dir_, &report).ok());
  EXPECT_EQ(restored.log_size(), 11u);  // the intact records replayed

  // The load reports exactly what the tear cost: one half-flushed record,
  // the 8 appended garbage bytes.
  EXPECT_TRUE(report.journal_tail_truncated);
  EXPECT_EQ(report.dropped_journal_records, 1u);
  EXPECT_EQ(report.dropped_journal_bytes, 8u);

  // The restored engine keeps working: append + rebuild, bit-identical.
  ASSERT_TRUE(restored.AddQuery(s.log[11]).ok());
  auto rebuilt = restored.BuildMatrix("token");
  ASSERT_TRUE(rebuilt.ok());
  Engine cold(s.Context());
  cold.SetLog(s.log);
  auto expect = cold.BuildMatrix("token");
  ASSERT_TRUE(expect.ok());
  ExpectBitIdentical(*expect, *rebuilt);

  // A second load of the (repaired) checkpoint reports a clean journal.
  Engine again(s.Context());
  CheckpointLoadReport clean;
  ASSERT_TRUE(again.LoadCheckpoint(dir_, &clean).ok());
  EXPECT_FALSE(clean.journal_tail_truncated);
  EXPECT_EQ(clean.dropped_journal_records, 0u);
  EXPECT_EQ(clean.dropped_journal_bytes, 0u);
}

TEST_F(CheckpointTest, KillMidAppendEveryCutPointRecoversOrFailsStrictly) {
  // Kill the process at *every possible byte* of a journal append: the
  // tolerant load must recover the intact prefix (reporting the drop), the
  // strict load must refuse — and neither may ever see garbage.
  workload::Scenario s = Shop(59, 12);
  {
    Engine engine(s.Context());
    engine.SetLog({s.log.begin(), s.log.begin() + 10});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    ASSERT_TRUE(engine.AddQuery(s.log[10]).ok());
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.AddQuery(s.log[11]).ok());  // the record we tear
  }
  const fs::path journal = fs::path(dir_) / "journal.dpe";
  std::ifstream in(journal, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // The last append was AddQuery(log[11]): find where it starts by replaying
  // the sizes — simpler: cut at every byte after the penultimate record and
  // re-load. (Cut points inside earlier records would be mid-stream
  // corruption, a different failure class tested elsewhere.)
  size_t intact_prefix = 0;
  EngineOptions strict_options;
  strict_options.tolerate_torn_journal = false;
  // Walk the cut point backwards from one-byte-short until it lands on the
  // record boundary where the torn record starts.
  for (size_t cut = full.size(); cut-- > 8;) {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    Engine strict_engine(s.Context(), strict_options);
    Status strict_status = strict_engine.LoadCheckpoint(dir_);
    Engine tolerant(s.Context());
    CheckpointLoadReport report;
    Status tolerant_status = tolerant.LoadCheckpoint(dir_, &report);
    ASSERT_TRUE(tolerant_status.ok()) << "cut " << cut << ": "
                                      << tolerant_status;
    // The torn record is AddQuery(log[11]); with it dropped the replayed
    // log holds 11 queries either way.
    EXPECT_EQ(tolerant.log_size(), 11u) << "cut " << cut;
    if (!report.journal_tail_truncated) {
      // Cut landed exactly on the record boundary: nothing torn, the
      // strict load agrees, and the sweep is done.
      EXPECT_TRUE(strict_status.ok()) << "cut " << cut << ": "
                                      << strict_status;
      EXPECT_EQ(report.dropped_journal_records, 0u);
      EXPECT_EQ(report.dropped_journal_bytes, 0u);
      intact_prefix = cut;
      break;
    }
    EXPECT_EQ(report.dropped_journal_records, 1u) << "cut " << cut;
    EXPECT_GT(report.dropped_journal_bytes, 0u) << "cut " << cut;
    // Strict mode refuses the torn tail with a typed error.
    EXPECT_EQ(strict_status.code(), StatusCode::kParseError) << "cut " << cut;
    // Tolerant recovery repaired the file: a strict re-load now works.
    Engine after_repair(s.Context(), strict_options);
    EXPECT_TRUE(after_repair.LoadCheckpoint(dir_).ok()) << "cut " << cut;
    EXPECT_EQ(after_repair.log_size(), 11u) << "cut " << cut;
  }
  EXPECT_GT(intact_prefix, 8u);  // the boundary cut was found
}

TEST_F(CheckpointTest, MeasureBuiltAfterCheckpointIsPersistedViaJournal) {
  workload::Scenario s = Shop(47, 10);
  {
    Engine engine(s.Context());
    engine.SetLog(s.log);
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    // "structure" is first built after the checkpoint: its rows must be
    // journaled (per-measure watermark), not silently dropped.
    ASSERT_TRUE(engine.BuildMatrix("structure").ok());
  }
  Engine restored(s.Context());
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  ASSERT_TRUE(restored.BuildMatrix("structure").ok());
  EXPECT_EQ(restored.cache_stats().misses, 0u);  // fully replayed
}

TEST_F(CheckpointTest, RowsQueriedButNotBuiltBeforeSaveStillJournal) {
  // Checkpoint taken while the matrix lags the log: 5 rows built, 5 more
  // queries appended un-built. The watermark must reflect snapshot
  // coverage (5 rows), not the log size, so the later build journals the
  // missing rows and a restart replays everything.
  workload::Scenario s = Shop(53, 10);
  {
    Engine engine(s.Context());
    engine.SetLog({s.log.begin(), s.log.begin() + 5});
    ASSERT_TRUE(engine.BuildMatrix("token").ok());
    for (size_t i = 5; i < 10; ++i) {
      ASSERT_TRUE(engine.AddQuery(s.log[i]).ok());
    }
    ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
    ASSERT_TRUE(engine.BuildMatrix("token").ok());  // rows 5..9 journal here
  }
  Engine restored(s.Context());
  ASSERT_TRUE(restored.LoadCheckpoint(dir_).ok());
  ASSERT_TRUE(restored.BuildMatrix("token").ok());
  EXPECT_EQ(restored.cache_stats().misses, 0u);  // nothing recomputed
}

TEST_F(CheckpointTest, SetLogDetachesCheckpoint) {
  workload::Scenario s = Shop(5, 6);
  Engine engine(s.Context());
  engine.SetLog(s.log);
  ASSERT_TRUE(engine.SaveCheckpoint(dir_).ok());
  ASSERT_TRUE(engine.checkpoint_attached());
  engine.SetLog(s.log);
  EXPECT_FALSE(engine.checkpoint_attached());
}

}  // namespace
}  // namespace dpe::engine
