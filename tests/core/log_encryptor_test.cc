#include "core/log_encryptor.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/scenarios.h"

namespace dpe::core {
namespace {

/// Shared scenario + one encryptor per canonical scheme.
class LogEncryptorTest : public ::testing::Test {
 protected:
  static const workload::Scenario& Scenario() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 5;
      opt.rows_per_relation = 30;
      opt.log_size = 25;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static const crypto::KeyManager& Keys() {
    static crypto::KeyManager keys("log-encryptor-test");
    return keys;
  }

  static LogEncryptor MakeEncryptor(MeasureKind kind) {
    LogEncryptor::Options options;
    options.paillier_bits = 256;
    options.ope_range_bits = 80;
    options.rng_seed = "test-seed";
    return LogEncryptor::Create(CanonicalScheme(kind), Keys(),
                                Scenario().database, Scenario().log,
                                Scenario().domains, options)
        .value();
  }
};

TEST_F(LogEncryptorTest, CanonicalSchemesMatchTableI) {
  EXPECT_EQ(CanonicalScheme(MeasureKind::kToken).uniform_const,
            crypto::PpeClass::kDet);
  EXPECT_TRUE(CanonicalScheme(MeasureKind::kToken).global_const_key);
  EXPECT_EQ(CanonicalScheme(MeasureKind::kStructure).uniform_const,
            crypto::PpeClass::kProb);
  EXPECT_EQ(CanonicalScheme(MeasureKind::kResult).const_mode,
            ConstMode::kCryptDb);
  EXPECT_EQ(CanonicalScheme(MeasureKind::kAccessArea).const_mode,
            ConstMode::kCryptDbNoHom);
  for (MeasureKind m : {MeasureKind::kToken, MeasureKind::kStructure,
                        MeasureKind::kResult, MeasureKind::kAccessArea}) {
    EXPECT_EQ(CanonicalScheme(m).enc_rel, crypto::PpeClass::kDet);
    EXPECT_EQ(CanonicalScheme(m).enc_attr, crypto::PpeClass::kDet);
  }
}

TEST_F(LogEncryptorTest, TokenSchemeEncryptsEveryQuery) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kToken);
  for (const auto& q : Scenario().log) {
    auto eq = enc.EncryptQuery(q);
    ASSERT_TRUE(eq.ok()) << sql::ToSql(q) << " -> " << eq.status();
    // Encrypted query still lexes and parses.
    EXPECT_TRUE(sql::Parse(sql::ToSql(*eq)).ok()) << sql::ToSql(*eq);
  }
}

TEST_F(LogEncryptorTest, TokenSchemeNamesAreDeterministic) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kToken);
  EXPECT_EQ(enc.EncryptRelName("orders").value(),
            enc.EncryptRelName("orders").value());
  EXPECT_NE(enc.EncryptRelName("orders").value(),
            enc.EncryptAttrName("orders").value());
}

TEST_F(LogEncryptorTest, TokenSchemeIntConstantsGetNumericImages) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kToken);
  auto img = enc.EncryptConstant("@any", sql::Literal::Int(5)).value();
  EXPECT_EQ(img.kind(), sql::Literal::Kind::kInt);
  EXPECT_NE(img.int_value(), 5);
  EXPECT_EQ(enc.EncryptConstant("@other", sql::Literal::Int(5)).value(), img)
      << "global key: image must not depend on the attribute";
  auto dimg = enc.EncryptConstant("@any", sql::Literal::Double(2.5)).value();
  EXPECT_EQ(dimg.kind(), sql::Literal::Kind::kDouble);
  auto simg = enc.EncryptConstant("@any", sql::Literal::String("x")).value();
  EXPECT_EQ(simg.kind(), sql::Literal::Kind::kString);
  EXPECT_EQ(simg.string_value()[0], 'e');
}

TEST_F(LogEncryptorTest, TokenSchemeLimitGetsSameImageAsEqualConstant) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kToken);
  auto q = sql::Parse("SELECT cid FROM customers WHERE age = 5 LIMIT 5").value();
  auto eq = enc.EncryptQuery(q).value();
  ASSERT_TRUE(eq.limit.has_value());
  EXPECT_EQ(sql::Literal::Int(*eq.limit), eq.where->literal);
}

TEST_F(LogEncryptorTest, StructureSchemeConstantsAreProbabilistic) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kStructure);
  auto q = sql::Parse("SELECT cid FROM customers WHERE age = 30").value();
  auto e1 = enc.EncryptQuery(q).value();
  auto e2 = enc.EncryptQuery(q).value();
  // Same names, different constant ciphertexts.
  EXPECT_EQ(e1.from.name, e2.from.name);
  EXPECT_NE(e1.where->literal, e2.where->literal);
  EXPECT_EQ(e1.where->literal.string_value()[0], 'p');
}

TEST_F(LogEncryptorTest, ResultSchemeUsesCryptDb) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kResult);
  EXPECT_NE(enc.crypt_db(), nullptr);
  auto artifacts = enc.EncryptAll().value();
  EXPECT_TRUE(artifacts.encrypted_db.has_value());
  EXPECT_EQ(artifacts.encrypted_log.size(), Scenario().log.size());
  EXPECT_TRUE(static_cast<bool>(artifacts.provider_options.agg_hook));
}

TEST_F(LogEncryptorTest, AccessAreaSchemeDerivesPerAttributeClasses) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kAccessArea);
  bool saw_ope = false, saw_det = false;
  for (const auto& [key, cls] : enc.const_classes()) {
    (void)key;
    saw_ope |= cls == crypto::PpeClass::kOpe;
    saw_det |= cls == crypto::PpeClass::kDet;
    EXPECT_NE(cls, crypto::PpeClass::kHom) << "except HOM";
  }
  EXPECT_TRUE(saw_ope);
  EXPECT_TRUE(saw_det);
}

TEST_F(LogEncryptorTest, AccessAreaArtifactsShareEncryptedDomains) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kAccessArea);
  auto artifacts = enc.EncryptAll().value();
  ASSERT_TRUE(artifacts.encrypted_domains.has_value());
  EXPECT_FALSE(artifacts.encrypted_db.has_value());
  EXPECT_GT(artifacts.encrypted_domains->all().size(), 0u);
  // Domains of OPE attributes preserve order after encryption.
  for (const auto& [key, dom] : artifacts.encrypted_domains->all()) {
    (void)key;
    if (dom.min.is_string() && dom.min.string_value()[0] == 'o') {
      EXPECT_LT(dom.min.string_value(), dom.max.string_value());
    }
  }
}

TEST_F(LogEncryptorTest, DeriveOnionLayoutCoversLogNeeds) {
  cryptdb::SchemaMap schemas;
  for (const auto& rel : Scenario().database.TableNames()) {
    schemas[rel] = Scenario().database.GetTable(rel).value()->schema();
  }
  std::vector<sql::SelectQuery> log = Scenario().log;
  log.push_back(
      sql::Parse("SELECT orders.oid FROM orders JOIN customers "
                 "ON orders.cid = customers.cid WHERE orders.quantity > 3")
          .value());
  auto layout = DeriveOnionLayout(log, schemas).value();
  EXPECT_GT(layout.columns.size(), 0u);
  // The appended join put both cid columns into one shared group.
  ASSERT_TRUE(layout.join_group_of.contains("orders.cid"));
  ASSERT_TRUE(layout.join_group_of.contains("customers.cid"));
  EXPECT_EQ(layout.join_group_of.at("orders.cid"),
            layout.join_group_of.at("customers.cid"));
  // And the range predicate forced an ORD onion.
  EXPECT_TRUE(layout.ConfigFor("orders.quantity").ord);
  EXPECT_TRUE(layout.ConfigFor("orders.cid").eq);
}

TEST_F(LogEncryptorTest, AccessAreaRangeConstantsKeepOrder) {
  LogEncryptor enc = MakeEncryptor(MeasureKind::kAccessArea);
  // Find an attribute the scheme classified as OPE (ranged in the log) and
  // craft a BETWEEN on it: the encrypted endpoints must stay ordered
  // (fixed-width hex, monotone OPE).
  std::string ope_key;
  for (const auto& [key, cls] : enc.const_classes()) {
    if (cls == crypto::PpeClass::kOpe) {
      ope_key = key;
      break;
    }
  }
  ASSERT_FALSE(ope_key.empty()) << "log has range predicates, so some "
                                   "attribute must be OPE-classified";
  auto dot = ope_key.find('.');
  const std::string rel = ope_key.substr(0, dot);
  const std::string attr = ope_key.substr(dot + 1);
  auto q = sql::Parse("SELECT " + attr + " FROM " + rel + " WHERE " + attr +
                      " BETWEEN 21 AND 23")
               .value();
  auto eq = enc.EncryptQuery(q).value();
  ASSERT_EQ(eq.where->kind, sql::Predicate::Kind::kBetween);
  const std::string lo = eq.where->low.string_value();
  const std::string hi = eq.where->high.string_value();
  EXPECT_EQ(lo[0], 'o');
  EXPECT_LT(lo, hi);
  EXPECT_EQ(lo.size(), hi.size());
}

TEST_F(LogEncryptorTest, AccessAreaEqualityOnRangedAttributeUsesOpe) {
  // Consistency: if the log ranges over an attribute anywhere, even its
  // equality constants use the (order-comparable) OPE image.
  LogEncryptor enc = MakeEncryptor(MeasureKind::kAccessArea);
  auto cls = enc.ConstClassFor("customers.age");
  ASSERT_TRUE(cls.ok());
  if (*cls == crypto::PpeClass::kOpe) {
    auto q = sql::Parse("SELECT cid FROM customers WHERE age = 30").value();
    auto eq = enc.EncryptQuery(q).value();
    EXPECT_EQ(eq.where->literal.string_value()[0], 'o');
  }
}

TEST_F(LogEncryptorTest, DeterministicEncryptionAcrossEncryptorInstances) {
  // Two encryptors with the same keys and spec produce identical encrypted
  // queries (required for owner restarts).
  LogEncryptor a = MakeEncryptor(MeasureKind::kToken);
  LogEncryptor b = MakeEncryptor(MeasureKind::kToken);
  for (size_t i = 0; i < 5 && i < Scenario().log.size(); ++i) {
    EXPECT_EQ(sql::ToSql(a.EncryptQuery(Scenario().log[i]).value()),
              sql::ToSql(b.EncryptQuery(Scenario().log[i]).value()));
  }
}

TEST_F(LogEncryptorTest, SpecDescriptions) {
  EXPECT_NE(CanonicalScheme(MeasureKind::kResult).Describe().find("via CryptDB"),
            std::string::npos);
  EXPECT_NE(CanonicalScheme(MeasureKind::kAccessArea)
                .Describe()
                .find("except HOM"),
            std::string::npos);
  EXPECT_NE(CanonicalScheme(MeasureKind::kToken).Describe().find("DET"),
            std::string::npos);
}

TEST_F(LogEncryptorTest, MeasureFactory) {
  for (MeasureKind m : {MeasureKind::kToken, MeasureKind::kStructure,
                        MeasureKind::kResult, MeasureKind::kAccessArea}) {
    auto measure = MakeMeasure(m);
    ASSERT_NE(measure, nullptr);
    EXPECT_EQ(measure->Name(), MeasureKindName(m));
  }
}

}  // namespace
}  // namespace dpe::core
