#include "core/taxonomy.h"

#include <gtest/gtest.h>

namespace dpe::core {
namespace {

TEST(TaxonomyTest, Fig1Levels) {
  const Taxonomy& t = Taxonomy::Fig1();
  EXPECT_EQ(t.SecurityLevel(PpeClass::kProb), 3);
  EXPECT_EQ(t.SecurityLevel(PpeClass::kHom), 3);
  EXPECT_EQ(t.SecurityLevel(PpeClass::kDet), 2);
  EXPECT_EQ(t.SecurityLevel(PpeClass::kJoin), 2);
  EXPECT_EQ(t.SecurityLevel(PpeClass::kOpe), 1);
  EXPECT_EQ(t.SecurityLevel(PpeClass::kJoinOpe), 1);
  EXPECT_EQ(t.SecurityLevel(PpeClass::kIdentity), 0);
}

TEST(TaxonomyTest, SubclassEdges) {
  const Taxonomy& t = Taxonomy::Fig1();
  EXPECT_TRUE(t.IsSubclassOf(PpeClass::kHom, PpeClass::kProb));
  EXPECT_TRUE(t.IsSubclassOf(PpeClass::kOpe, PpeClass::kDet));
  EXPECT_TRUE(t.IsSubclassOf(PpeClass::kDet, PpeClass::kDet));
  EXPECT_FALSE(t.IsSubclassOf(PpeClass::kProb, PpeClass::kHom));
  EXPECT_FALSE(t.IsSubclassOf(PpeClass::kDet, PpeClass::kProb));
}

TEST(TaxonomyTest, SecurityComparisonsPartial) {
  const Taxonomy& t = Taxonomy::Fig1();
  EXPECT_EQ(t.CompareSecurity(PpeClass::kProb, PpeClass::kDet).value(), 1);
  EXPECT_EQ(t.CompareSecurity(PpeClass::kOpe, PpeClass::kDet).value(), -1);
  EXPECT_EQ(t.CompareSecurity(PpeClass::kDet, PpeClass::kDet).value(), 0);
  // Same row, different class: not comparable (the paper's Fig. 1 note).
  EXPECT_FALSE(t.CompareSecurity(PpeClass::kProb, PpeClass::kHom).has_value());
  EXPECT_FALSE(t.CompareSecurity(PpeClass::kDet, PpeClass::kJoin).has_value());
}

TEST(TaxonomyTest, RenderMentionsAllClasses) {
  std::string r = Taxonomy::Fig1().Render();
  for (const char* name : {"PROB", "HOM", "DET", "JOIN", "OPE", "JOIN-OPE"}) {
    EXPECT_NE(r.find(name), std::string::npos) << name;
  }
}

TEST(SecurityProfileTest, CompareFromWorstSlot) {
  SecurityProfile weak, strong;
  weak.AddLevel(1);
  weak.AddLevel(3);
  strong.AddLevel(2);
  strong.AddLevel(2);
  EXPECT_EQ(strong.Compare(weak), 1);   // worst 2 beats worst 1
  EXPECT_EQ(weak.Compare(strong), -1);
  EXPECT_EQ(weak.Compare(weak), 0);
  EXPECT_EQ(weak.MinLevel(), 1);
  EXPECT_DOUBLE_EQ(strong.MeanLevel(), 2.0);
}

TEST(SecurityProfileTest, TieBrokenBySecondWorst) {
  SecurityProfile a, b;
  a.AddLevel(1);
  a.AddLevel(3);
  b.AddLevel(1);
  b.AddLevel(2);
  EXPECT_EQ(a.Compare(b), 1);
}

// Empirical Fig. 1 property validation (what bench_fig1 prints).
TEST(TaxonomyValidationTest, ProbProperty) {
  EXPECT_TRUE(ValidateProbProperty(200).value());
}

TEST(TaxonomyValidationTest, DetProperty) {
  EXPECT_TRUE(ValidateDetProperty(200).value());
}

TEST(TaxonomyValidationTest, OpeProperty) {
  EXPECT_TRUE(ValidateOpeProperty(150).value());
}

TEST(TaxonomyValidationTest, HomProperty) {
  EXPECT_TRUE(ValidateHomProperty(20).value());
}

TEST(TaxonomyValidationTest, JoinProperty) {
  EXPECT_TRUE(ValidateJoinProperty(50).value());
}

}  // namespace
}  // namespace dpe::core
