#include "core/equivalence.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace dpe::core {
namespace {

class EquivalenceTest : public ::testing::Test {
 protected:
  static const workload::Scenario& Scenario() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 9;
      opt.rows_per_relation = 30;
      opt.log_size = 30;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static LogEncryptor Make(const SchemeSpec& spec) {
    static crypto::KeyManager keys("equivalence-test");
    LogEncryptor::Options options;
    options.paillier_bits = 256;
    options.ope_range_bits = 80;
    options.rng_seed = "eq-seed";
    return LogEncryptor::Create(spec, keys, Scenario().database, Scenario().log,
                                Scenario().domains, options)
        .value();
  }
};

TEST_F(EquivalenceTest, TokenEquivalenceHoldsForCanonicalScheme) {
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kToken));
  auto report = CheckTokenEquivalence(enc, Scenario().log).value();
  EXPECT_EQ(report.checked, Scenario().log.size());
  EXPECT_TRUE(report.ok()) << report.first_failure;
}

TEST_F(EquivalenceTest, TokenEquivalenceFailsWithPerAttributeKeys) {
  // The counterexample of DESIGN.md: per-attribute constant keys break token
  // equivalence when the same literal occurs under two attributes.
  SchemeSpec spec = CanonicalScheme(MeasureKind::kToken);
  spec.global_const_key = false;
  LogEncryptor enc = Make(spec);
  auto report = CheckTokenEquivalence(enc, Scenario().log).value();
  EXPECT_GT(report.failed, 0u);
}

TEST_F(EquivalenceTest, TokenEquivalenceFailsWithProbConstants) {
  SchemeSpec spec = CanonicalScheme(MeasureKind::kToken);
  spec.uniform_const = crypto::PpeClass::kProb;
  LogEncryptor enc = Make(spec);
  auto report = CheckTokenEquivalence(enc, Scenario().log).value();
  EXPECT_GT(report.failed, 0u);
}

TEST_F(EquivalenceTest, StructuralEquivalenceHoldsForCanonicalScheme) {
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kStructure));
  auto report = CheckStructuralEquivalence(enc, Scenario().log).value();
  EXPECT_TRUE(report.ok()) << report.first_failure;
  EXPECT_EQ(report.checked, Scenario().log.size());
}

TEST_F(EquivalenceTest, StructuralEquivalenceAlsoHoldsUnderTokenScheme) {
  // DET constants are stricter than needed for structure: still preserving.
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kToken));
  auto report = CheckStructuralEquivalence(enc, Scenario().log).value();
  EXPECT_TRUE(report.ok()) << report.first_failure;
}

TEST_F(EquivalenceTest, ResultEquivalenceDecryptedMode) {
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kResult));
  auto report =
      CheckResultEquivalence(enc, Scenario().log, ResultEquivalenceMode::kDecrypted)
          .value();
  EXPECT_TRUE(report.ok()) << report.first_failure;
  EXPECT_EQ(report.checked, Scenario().log.size());
}

TEST_F(EquivalenceTest, ResultEquivalenceCiphertextModeOnSpjQueries) {
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kResult));
  auto report =
      CheckResultEquivalence(enc, Scenario().log, ResultEquivalenceMode::kCiphertext)
          .value();
  EXPECT_TRUE(report.ok()) << report.first_failure;
  // Aggregate queries are skipped in ciphertext mode (Paillier aggregates
  // are probabilistic); some must have been checked though.
  EXPECT_GT(report.checked - report.skipped, 0u);
}

TEST_F(EquivalenceTest, ResultEquivalenceRequiresCryptDbMode) {
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kToken));
  EXPECT_FALSE(CheckResultEquivalence(enc, Scenario().log,
                                      ResultEquivalenceMode::kDecrypted)
                   .ok());
}

TEST_F(EquivalenceTest, AccessAreaEquivalenceHoldsForCanonicalScheme) {
  LogEncryptor enc = Make(CanonicalScheme(MeasureKind::kAccessArea));
  auto report =
      CheckAccessAreaEquivalence(enc, Scenario().log, Scenario().domains).value();
  EXPECT_TRUE(report.ok()) << report.first_failure;
  EXPECT_EQ(report.checked, Scenario().log.size());
}

TEST_F(EquivalenceTest, AccessAreaEquivalenceFailsWithProbConstants) {
  SchemeSpec spec = CanonicalScheme(MeasureKind::kAccessArea);
  spec.const_mode = ConstMode::kUniform;
  spec.uniform_const = crypto::PpeClass::kProb;
  spec.global_const_key = false;
  LogEncryptor enc = Make(spec);
  auto report =
      CheckAccessAreaEquivalence(enc, Scenario().log, Scenario().domains).value();
  EXPECT_GT(report.failed, 0u);
}

TEST_F(EquivalenceTest, DispatcherRoutesByKind) {
  for (MeasureKind m : {MeasureKind::kToken, MeasureKind::kStructure,
                        MeasureKind::kResult, MeasureKind::kAccessArea}) {
    LogEncryptor enc = Make(CanonicalScheme(m));
    auto report = CheckEquivalence(m, enc, Scenario().log, Scenario().domains);
    ASSERT_TRUE(report.ok()) << MeasureKindName(m);
    EXPECT_TRUE(report->ok()) << MeasureKindName(m) << ": "
                              << report->first_failure;
  }
}

}  // namespace
}  // namespace dpe::core
