#include "core/security.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace dpe::core {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  static const workload::Scenario& Scenario() {
    static workload::Scenario s = [] {
      workload::ScenarioOptions opt;
      opt.seed = 33;
      opt.rows_per_relation = 20;
      opt.log_size = 25;
      return workload::MakeShopScenario(opt).value();
    }();
    return s;
  }

  static LogEncryptor Make(MeasureKind kind) {
    static crypto::KeyManager keys("security-test");
    LogEncryptor::Options options;
    options.paillier_bits = 256;
    options.rng_seed = "sec";
    return LogEncryptor::Create(CanonicalScheme(kind), keys, Scenario().database,
                                Scenario().log, Scenario().domains, options)
        .value();
  }
};

TEST_F(SecurityTest, AttackModelNames) {
  EXPECT_STREQ(AttackModelName(AttackModel::kQueryOnly), "query-only");
  EXPECT_STREQ(AttackModelName(AttackModel::kKnownQuery), "known-query");
  EXPECT_STREQ(AttackModelName(AttackModel::kChosenQuery), "chosen-query");
}

TEST_F(SecurityTest, AssessTokenScheme) {
  LogEncryptor enc = Make(MeasureKind::kToken);
  auto report = AssessScheme(enc);
  ASSERT_EQ(report.slots.size(), 3u);  // EncRel, EncAttr, EncConst(*)
  EXPECT_EQ(report.slots[0].cls, crypto::PpeClass::kDet);
  EXPECT_EQ(report.slots[2].level, 2);
  EXPECT_NE(report.ToString().find("EncConst"), std::string::npos);
}

TEST_F(SecurityTest, StructureSchemeIsStrictlyMoreSecureThanToken) {
  // PROB constants (level 3) vs DET constants (level 2).
  auto token_report = AssessScheme(Make(MeasureKind::kToken));
  auto structure_report = AssessScheme(Make(MeasureKind::kStructure));
  EXPECT_EQ(CompareReports(structure_report, token_report), 1);
}

TEST_F(SecurityTest, AccessAreaSchemeHasNoHomSlots) {
  auto report = AssessScheme(Make(MeasureKind::kAccessArea));
  for (const auto& slot : report.slots) {
    EXPECT_NE(slot.cls, crypto::PpeClass::kHom) << slot.slot;
  }
}

TEST_F(SecurityTest, FrequencyAttackOnDetSucceedsOnSkewedData) {
  auto det =
      SimulateFrequencyAttack(crypto::PpeClass::kDet, 5000, 20, 1.4, 7).value();
  auto prob =
      SimulateFrequencyAttack(crypto::PpeClass::kProb, 5000, 20, 1.4, 7).value();
  // DET leaks frequencies: the attacker beats the guessing baseline.
  EXPECT_GT(det.accuracy, det.baseline + 0.05);
  // PROB gives the attacker nothing beyond the prior.
  EXPECT_NEAR(prob.accuracy, prob.baseline, 1e-9);
}

TEST_F(SecurityTest, OrderAttackOnOpeIsStrongest) {
  auto ope =
      SimulateFrequencyAttack(crypto::PpeClass::kOpe, 2000, 20, 1.4, 7).value();
  auto det =
      SimulateFrequencyAttack(crypto::PpeClass::kDet, 2000, 20, 1.4, 7).value();
  EXPECT_GE(ope.accuracy, det.accuracy);
  EXPECT_GT(ope.accuracy, 0.9);  // full pool observed -> order aligns exactly
}

TEST_F(SecurityTest, AttackValidation) {
  EXPECT_FALSE(
      SimulateFrequencyAttack(crypto::PpeClass::kDet, 0, 10, 1.0, 1).ok());
  EXPECT_FALSE(
      SimulateFrequencyAttack(crypto::PpeClass::kDet, 10, 0, 1.0, 1).ok());
  EXPECT_FALSE(
      SimulateFrequencyAttack(crypto::PpeClass::kJoin, 10, 10, 1.0, 1).ok());
}

TEST_F(SecurityTest, AttackIsDeterministicInSeed) {
  auto a =
      SimulateFrequencyAttack(crypto::PpeClass::kDet, 1000, 10, 1.2, 42).value();
  auto b =
      SimulateFrequencyAttack(crypto::PpeClass::kDet, 1000, 10, 1.2, 42).value();
  EXPECT_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace dpe::core
