#include "crypto/csprng.h"

#include <gtest/gtest.h>

#include <set>

namespace dpe::crypto {
namespace {

TEST(CsprngTest, SeededIsDeterministic) {
  Csprng a = Csprng::FromSeed("seed");
  Csprng b = Csprng::FromSeed("seed");
  EXPECT_EQ(a.NextBytes(64), b.NextBytes(64));
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(CsprngTest, DifferentSeedsDiverge) {
  Csprng a = Csprng::FromSeed("seed-1");
  Csprng b = Csprng::FromSeed("seed-2");
  EXPECT_NE(a.NextBytes(32), b.NextBytes(32));
}

TEST(CsprngTest, RequestedSizes) {
  Csprng rng = Csprng::FromSeed("sizes");
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 100u}) {
    EXPECT_EQ(rng.NextBytes(n).size(), n);
  }
}

TEST(CsprngTest, StreamIsNotRepeating) {
  Csprng rng = Csprng::FromSeed("stream");
  std::set<Bytes> blocks;
  for (int i = 0; i < 100; ++i) blocks.insert(rng.NextBytes(16));
  EXPECT_EQ(blocks.size(), 100u);
}

TEST(CsprngTest, NextBelowUnbiasedRange) {
  Csprng rng = Csprng::FromSeed("below");
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  // All residues reachable.
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(CsprngTest, SystemEntropyWorks) {
  Csprng a = Csprng::FromSystemEntropy();
  Csprng b = Csprng::FromSystemEntropy();
  EXPECT_NE(a.NextBytes(32), b.NextBytes(32));
}

TEST(CsprngTest, ByteDistributionRoughlyUniform) {
  Csprng rng = Csprng::FromSeed("dist");
  std::vector<int> counts(256, 0);
  Bytes data = rng.NextBytes(256 * 100);
  for (unsigned char c : data) ++counts[c];
  for (int c : counts) {
    EXPECT_GT(c, 30);   // expected 100 each
    EXPECT_LT(c, 300);
  }
}

}  // namespace
}  // namespace dpe::crypto
