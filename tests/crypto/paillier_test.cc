#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace dpe::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  static const Paillier::KeyPair& Kp() {
    static Paillier::KeyPair kp = [] {
      Csprng rng = Csprng::FromSeed("paillier-test");
      return Paillier::GenerateKeyPair(256, rng).value();
    }();
    return kp;
  }

  Csprng rng_ = Csprng::FromSeed("paillier-ops");
};

TEST_F(PaillierTest, KeyShape) {
  const auto& kp = Kp();
  EXPECT_GE(kp.pub.modulus_bits(), 250u);
  EXPECT_EQ(kp.pub.n2, kp.pub.n * kp.pub.n);
  EXPECT_GT(kp.priv.lambda, Bigint(1));
}

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  const auto& kp = Kp();
  for (int64_t m : {0L, 1L, 42L, 1'000'000L}) {
    Bigint ct = Paillier::Encrypt(kp.pub, Bigint(m), rng_).value();
    EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, ct).value(), Bigint(m));
  }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  const auto& kp = Kp();
  Bigint c1 = Paillier::Encrypt(kp.pub, Bigint(7), rng_).value();
  Bigint c2 = Paillier::Encrypt(kp.pub, Bigint(7), rng_).value();
  EXPECT_NE(c1, c2);
  EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, c1).value(),
            Paillier::Decrypt(kp.pub, kp.priv, c2).value());
}

TEST_F(PaillierTest, HomomorphicAddition) {
  const auto& kp = Kp();
  for (auto [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 0}, {1, 2}, {1000, 2345}, {999999, 1}}) {
    Bigint ca = Paillier::Encrypt(kp.pub, Bigint(a), rng_).value();
    Bigint cb = Paillier::Encrypt(kp.pub, Bigint(b), rng_).value();
    Bigint sum = Paillier::Add(kp.pub, ca, cb);
    EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, sum).value(), Bigint(a + b));
  }
}

TEST_F(PaillierTest, LongSumFold) {
  const auto& kp = Kp();
  Bigint acc = Paillier::Encrypt(kp.pub, Bigint(0), rng_).value();
  int64_t expected = 0;
  for (int64_t i = 1; i <= 50; ++i) {
    Bigint ci = Paillier::Encrypt(kp.pub, Bigint(i * 13), rng_).value();
    acc = Paillier::Add(kp.pub, acc, ci);
    expected += i * 13;
  }
  EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, acc).value(), Bigint(expected));
}

TEST_F(PaillierTest, AddPlainAndMulPlain) {
  const auto& kp = Kp();
  Bigint ct = Paillier::Encrypt(kp.pub, Bigint(100), rng_).value();
  Bigint plus = Paillier::AddPlain(kp.pub, ct, Bigint(23));
  EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, plus).value(), Bigint(123));
  Bigint times = Paillier::MulPlain(kp.pub, ct, Bigint(7));
  EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, times).value(), Bigint(700));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  const auto& kp = Kp();
  Bigint ct = Paillier::Encrypt(kp.pub, Bigint(55), rng_).value();
  Bigint rr = Paillier::Rerandomize(kp.pub, ct, rng_).value();
  EXPECT_NE(ct, rr);
  EXPECT_EQ(Paillier::Decrypt(kp.pub, kp.priv, rr).value(), Bigint(55));
}

TEST_F(PaillierTest, SignedEncoding) {
  const auto& kp = Kp();
  for (int64_t v : {0L, 5L, -5L, -123456L, 999999L}) {
    Bigint m = Paillier::EncodeSigned(kp.pub, v);
    EXPECT_FALSE(m.IsNegative());
    EXPECT_EQ(Paillier::DecodeSigned(kp.pub, m).value(), v);
  }
}

TEST_F(PaillierTest, SignedArithmeticThroughHomomorphism) {
  const auto& kp = Kp();
  // (-30) + 100 = 70 through ciphertext space.
  Bigint ca =
      Paillier::Encrypt(kp.pub, Paillier::EncodeSigned(kp.pub, -30), rng_).value();
  Bigint cb =
      Paillier::Encrypt(kp.pub, Paillier::EncodeSigned(kp.pub, 100), rng_).value();
  Bigint sum = Paillier::Add(kp.pub, ca, cb);
  Bigint m = Paillier::Decrypt(kp.pub, kp.priv, sum).value();
  EXPECT_EQ(Paillier::DecodeSigned(kp.pub, m).value(), 70);
}

TEST_F(PaillierTest, RejectsOutOfRangeInputs) {
  const auto& kp = Kp();
  EXPECT_FALSE(Paillier::Encrypt(kp.pub, Bigint(-1), rng_).ok());
  EXPECT_FALSE(Paillier::Encrypt(kp.pub, kp.pub.n, rng_).ok());
  EXPECT_FALSE(Paillier::Decrypt(kp.pub, kp.priv, kp.pub.n2).ok());
}

TEST_F(PaillierTest, RejectsTinyModulus) {
  Csprng rng = Csprng::FromSeed("tiny");
  EXPECT_FALSE(Paillier::GenerateKeyPair(32, rng).ok());
}

TEST_F(PaillierTest, DistinctKeyPairs) {
  Csprng r1 = Csprng::FromSeed("kp1");
  Csprng r2 = Csprng::FromSeed("kp2");
  auto kp1 = Paillier::GenerateKeyPair(128, r1).value();
  auto kp2 = Paillier::GenerateKeyPair(128, r2).value();
  EXPECT_NE(kp1.pub.n, kp2.pub.n);
}

}  // namespace
}  // namespace dpe::crypto
