#include "crypto/ope.h"

#include <gtest/gtest.h>

#include "crypto/csprng.h"
#include "crypto/keys.h"

namespace dpe::crypto {
namespace {

class OpeTest : public ::testing::Test {
 protected:
  static BoldyrevaOpe SmallOpe() {
    BoldyrevaOpe::Options opts;
    opts.domain_bits = 16;
    opts.range_bits = 32;
    return BoldyrevaOpe::Create(KeyManager("ope-test").Derive("k"), opts).value();
  }
};

TEST_F(OpeTest, DeterministicEncryption) {
  BoldyrevaOpe ope = SmallOpe();
  for (uint64_t x : {0ULL, 1ULL, 1000ULL, 65535ULL}) {
    EXPECT_EQ(ope.Encrypt(x), ope.Encrypt(x));
  }
}

TEST_F(OpeTest, StrictlyMonotoneOnRandomPairs) {
  BoldyrevaOpe ope = SmallOpe();
  Csprng rng = Csprng::FromSeed("pairs");
  for (int i = 0; i < 300; ++i) {
    uint64_t a = rng.NextBelow(1ULL << 16);
    uint64_t b = rng.NextBelow(1ULL << 16);
    Bigint ca = ope.Encrypt(a);
    Bigint cb = ope.Encrypt(b);
    EXPECT_EQ(a < b, ca < cb) << a << " " << b;
    EXPECT_EQ(a == b, ca == cb);
  }
}

TEST_F(OpeTest, MonotoneOnAdjacentValues) {
  BoldyrevaOpe ope = SmallOpe();
  Bigint prev = ope.Encrypt(0);
  for (uint64_t x = 1; x < 200; ++x) {
    Bigint cur = ope.Encrypt(x);
    EXPECT_LT(prev, cur) << x;
    prev = cur;
  }
}

TEST_F(OpeTest, DomainEndpoints) {
  BoldyrevaOpe ope = SmallOpe();
  Bigint lo = ope.Encrypt(0);
  Bigint hi = ope.Encrypt((1ULL << 16) - 1);
  EXPECT_LT(lo, hi);
  EXPECT_FALSE(lo.IsNegative());
  EXPECT_LE(hi.BitLength(), 32u);
}

TEST_F(OpeTest, DecryptInvertsEncrypt) {
  BoldyrevaOpe ope = SmallOpe();
  Csprng rng = Csprng::FromSeed("dec");
  for (int i = 0; i < 100; ++i) {
    uint64_t x = rng.NextBelow(1ULL << 16);
    EXPECT_EQ(ope.Decrypt(ope.Encrypt(x)).value(), x);
  }
}

TEST_F(OpeTest, DecryptRejectsNonCiphertexts) {
  BoldyrevaOpe ope = SmallOpe();
  // Scan a few values around a real ciphertext; non-image points must fail.
  Bigint ct = ope.Encrypt(1234);
  size_t rejected = 0;
  for (int delta = 1; delta <= 5; ++delta) {
    if (!ope.Decrypt(ct + Bigint(delta)).ok()) ++rejected;
    if (!ope.Decrypt(ct - Bigint(delta)).ok()) ++rejected;
  }
  EXPECT_GT(rejected, 0u);  // with 16->32 bit expansion most points are gaps
  EXPECT_FALSE(ope.Decrypt(Bigint(-1)).ok());
}

TEST_F(OpeTest, DifferentKeysDifferentMappings) {
  BoldyrevaOpe::Options opts;
  opts.domain_bits = 16;
  opts.range_bits = 32;
  KeyManager keys("ope-test");
  auto o1 = BoldyrevaOpe::Create(keys.Derive("a"), opts).value();
  auto o2 = BoldyrevaOpe::Create(keys.Derive("b"), opts).value();
  int same = 0;
  for (uint64_t x = 0; x < 50; ++x) {
    if (o1.Encrypt(x) == o2.Encrypt(x)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST_F(OpeTest, HexEncodingPreservesOrderLexicographically) {
  BoldyrevaOpe ope = SmallOpe();
  Csprng rng = Csprng::FromSeed("hex");
  std::string prev_hex;
  for (uint64_t x = 0; x < 300; x += 3) {
    std::string hex = ope.EncryptToHex(x);
    EXPECT_EQ(hex.size(), static_cast<size_t>(ope.hex_width()));
    if (!prev_hex.empty()) EXPECT_LT(prev_hex, hex);
    prev_hex = hex;
  }
}

TEST_F(OpeTest, FullDomainBitsWork) {
  BoldyrevaOpe::Options opts;  // 64 -> 96 default
  auto ope = BoldyrevaOpe::Create(KeyManager("ope-test").Derive("full"), opts)
                 .value();
  uint64_t xs[] = {0, 1, 1ULL << 32, (1ULL << 63) + 5, ~0ULL};
  Bigint prev(-1);
  for (uint64_t x : xs) {
    Bigint c = ope.Encrypt(x);
    EXPECT_LT(prev, c);
    EXPECT_EQ(ope.Decrypt(c).value(), x);
    prev = c;
  }
}

TEST_F(OpeTest, RejectsBadOptions) {
  KeyManager keys("ope-test");
  BoldyrevaOpe::Options bad;
  bad.domain_bits = 64;
  bad.range_bits = 64;  // must exceed domain
  EXPECT_FALSE(BoldyrevaOpe::Create(keys.Derive("k"), bad).ok());
  bad.domain_bits = 0;
  bad.range_bits = 32;
  EXPECT_FALSE(BoldyrevaOpe::Create(keys.Derive("k"), bad).ok());
  EXPECT_FALSE(BoldyrevaOpe::Create("short-key").ok());
}

TEST(DictionaryOpeTest, BuildAndEncryptPreservesOrder) {
  auto ope = DictionaryOpe::Create(KeyManager("dope").Derive("k")).value();
  std::vector<Bytes> domain = {"delta", "alpha", "charlie", "bravo", "alpha"};
  ASSERT_TRUE(ope.BuildFromDomain(domain).ok());
  EXPECT_EQ(ope.size(), 4u);  // deduplicated
  uint64_t a = ope.Encrypt("alpha").value();
  uint64_t b = ope.Encrypt("bravo").value();
  uint64_t c = ope.Encrypt("charlie").value();
  uint64_t d = ope.Encrypt("delta").value();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
}

TEST(DictionaryOpeTest, DecryptInverts) {
  auto ope = DictionaryOpe::Create(KeyManager("dope").Derive("k")).value();
  ASSERT_TRUE(ope.BuildFromDomain({"x", "y", "z"}).ok());
  for (const char* v : {"x", "y", "z"}) {
    EXPECT_EQ(ope.Decrypt(ope.Encrypt(v).value()).value(), v);
  }
  EXPECT_FALSE(ope.Decrypt(123456789).ok());
}

TEST(DictionaryOpeTest, UnknownValueFails) {
  auto ope = DictionaryOpe::Create(KeyManager("dope").Derive("k")).value();
  ASSERT_TRUE(ope.BuildFromDomain({"a"}).ok());
  EXPECT_FALSE(ope.Encrypt("missing").ok());
}

TEST(DictionaryOpeTest, DynamicInsertKeepsOrder) {
  auto ope = DictionaryOpe::Create(KeyManager("dope").Derive("k")).value();
  ASSERT_TRUE(ope.BuildFromDomain({"apple", "orange"}).ok());
  ASSERT_TRUE(ope.Insert("banana").ok());
  ASSERT_TRUE(ope.Insert("zebra").ok());
  uint64_t apple = ope.Encrypt("apple").value();
  uint64_t banana = ope.Encrypt("banana").value();
  uint64_t orange = ope.Encrypt("orange").value();
  uint64_t zebra = ope.Encrypt("zebra").value();
  EXPECT_LT(apple, banana);
  EXPECT_LT(banana, orange);
  EXPECT_LT(orange, zebra);
}

TEST(DictionaryOpeTest, InsertExistingIsNoop) {
  auto ope = DictionaryOpe::Create(KeyManager("dope").Derive("k")).value();
  ASSERT_TRUE(ope.BuildFromDomain({"a", "b"}).ok());
  uint64_t before = ope.Encrypt("a").value();
  ASSERT_TRUE(ope.Insert("a").ok());
  EXPECT_EQ(ope.Encrypt("a").value(), before);
  EXPECT_EQ(ope.size(), 2u);
}

TEST(DictionaryOpeTest, DeterministicAcrossInstances) {
  KeyManager keys("dope");
  auto o1 = DictionaryOpe::Create(keys.Derive("k")).value();
  auto o2 = DictionaryOpe::Create(keys.Derive("k")).value();
  std::vector<Bytes> domain = {"m", "n", "o", "p"};
  ASSERT_TRUE(o1.BuildFromDomain(domain).ok());
  ASSERT_TRUE(o2.BuildFromDomain(domain).ok());
  for (const auto& v : domain) {
    EXPECT_EQ(o1.Encrypt(v).value(), o2.Encrypt(v).value());
  }
}

}  // namespace
}  // namespace dpe::crypto
