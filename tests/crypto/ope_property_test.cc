// Property sweeps for the OPE instances: determinism, strict monotonicity
// and round-trip over a grid of (domain_bits, range_bits) configurations.

#include <gtest/gtest.h>

#include "crypto/csprng.h"
#include "crypto/keys.h"
#include "crypto/ope.h"

namespace dpe::crypto {
namespace {

struct OpeConfig {
  int domain_bits;
  int range_bits;
};

class OpePropertyTest : public ::testing::TestWithParam<OpeConfig> {
 protected:
  BoldyrevaOpe Make() const {
    BoldyrevaOpe::Options opts;
    opts.domain_bits = GetParam().domain_bits;
    opts.range_bits = GetParam().range_bits;
    static KeyManager keys("ope-property");
    return BoldyrevaOpe::Create(keys.Derive("sweep"), opts).value();
  }

  uint64_t DomainMask() const {
    int bits = GetParam().domain_bits;
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  }
};

TEST_P(OpePropertyTest, MonotoneAndDeterministicOnRandomPairs) {
  BoldyrevaOpe ope = Make();
  Csprng rng = Csprng::FromSeed("prop-pairs");
  for (int i = 0; i < 60; ++i) {
    uint64_t a = rng.NextU64() & DomainMask();
    uint64_t b = rng.NextU64() & DomainMask();
    Bigint ca = ope.Encrypt(a);
    Bigint cb = ope.Encrypt(b);
    EXPECT_EQ(a < b, ca < cb) << a << " vs " << b;
    EXPECT_EQ(ca, ope.Encrypt(a));
  }
}

TEST_P(OpePropertyTest, RoundTripAndRangeBound) {
  BoldyrevaOpe ope = Make();
  Csprng rng = Csprng::FromSeed("prop-rt");
  Bigint two(2);
  Bigint range_size(1);
  for (int i = 0; i < GetParam().range_bits; ++i) range_size = range_size * two;
  for (int i = 0; i < 25; ++i) {
    uint64_t x = rng.NextU64() & DomainMask();
    Bigint ct = ope.Encrypt(x);
    EXPECT_FALSE(ct.IsNegative());
    EXPECT_LT(ct, range_size);
    EXPECT_EQ(ope.Decrypt(ct).value(), x);
  }
}

TEST_P(OpePropertyTest, HexWidthFixedAndOrdered) {
  BoldyrevaOpe ope = Make();
  Csprng rng = Csprng::FromSeed("prop-hex");
  uint64_t prev = 0;
  std::string prev_hex;
  for (int i = 0; i < 20; ++i) {
    uint64_t x = (prev + 1 + rng.NextBelow(DomainMask() / 32 + 1)) & DomainMask();
    if (x <= prev) break;  // wrapped; stop
    std::string hex = ope.EncryptToHex(x);
    EXPECT_EQ(hex.size(), static_cast<size_t>(ope.hex_width()));
    if (!prev_hex.empty()) EXPECT_LT(prev_hex, hex);
    prev = x;
    prev_hex = hex;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OpePropertyTest,
    ::testing::Values(OpeConfig{8, 16}, OpeConfig{16, 24}, OpeConfig{32, 48},
                      OpeConfig{48, 64}, OpeConfig{64, 96},
                      OpeConfig{64, 128}),
    [](const ::testing::TestParamInfo<OpeConfig>& info) {
      return "d" + std::to_string(info.param.domain_bits) + "_r" +
             std::to_string(info.param.range_bits);
    });

}  // namespace
}  // namespace dpe::crypto
