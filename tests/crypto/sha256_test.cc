#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/hex.h"

namespace dpe::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256::Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Sha256::Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexEncode(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(HexEncode(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "SELECT a1 FROM r WHERE a2 > 5 -- an arbitrary message for chunking";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.Update(msg.substr(0, split));
    ctx.Update(msg.substr(split));
    EXPECT_EQ(ctx.Finish(), Sha256::Digest(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, BoundaryLengths) {
  // Padding edge cases: lengths around the 55/56/64-byte boundaries.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Bytes d1 = Sha256::Digest(msg);
    Sha256 ctx;
    for (char c : msg) ctx.Update(std::string(1, c));
    EXPECT_EQ(ctx.Finish(), d1) << "len " << len;
  }
}

}  // namespace
}  // namespace dpe::crypto
