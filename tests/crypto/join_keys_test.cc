#include <gtest/gtest.h>

#include "crypto/join.h"
#include "crypto/keys.h"

namespace dpe::crypto {
namespace {

TEST(KeyManagerTest, DerivationIsDeterministic) {
  KeyManager a("master");
  KeyManager b("master");
  EXPECT_EQ(a.Derive("x"), b.Derive("x"));
  EXPECT_EQ(a.Derive("x").size(), 32u);
}

TEST(KeyManagerTest, PurposesAreIndependent) {
  KeyManager keys("master");
  EXPECT_NE(keys.Derive("name/rel"), keys.Derive("name/attr"));
  EXPECT_NE(keys.Derive("a"), keys.Derive("a/"));
}

TEST(KeyManagerTest, MastersAreIndependent) {
  EXPECT_NE(KeyManager("m1").Derive("p"), KeyManager("m2").Derive("p"));
}

TEST(KeyManagerTest, DeriveN) {
  KeyManager keys("master");
  EXPECT_EQ(keys.DeriveN("p", 64).size(), 64u);
  EXPECT_EQ(keys.DeriveN("p", 64).substr(0, 32), keys.Derive("p"));
}

TEST(KeyManagerTest, FromPasswordDeterministic) {
  KeyManager a = KeyManager::FromPassword("hunter2");
  KeyManager b = KeyManager::FromPassword("hunter2");
  KeyManager c = KeyManager::FromPassword("hunter3");
  EXPECT_EQ(a.Derive("p"), b.Derive("p"));
  EXPECT_NE(a.Derive("p"), c.Derive("p"));
}

class JoinRegistryTest : public ::testing::Test {
 protected:
  KeyManager keys_{"join-test"};
};

TEST_F(JoinRegistryTest, GroupedColumnsShareCiphertexts) {
  JoinKeyRegistry reg(keys_);
  ASSERT_TRUE(reg.AddToGroup("g", "orders.cid").ok());
  ASSERT_TRUE(reg.AddToGroup("g", "customers.cid").ok());
  auto e1 = reg.EncryptorFor("orders.cid").value();
  auto e2 = reg.EncryptorFor("customers.cid").value();
  EXPECT_EQ(e1.Encrypt("i:42"), e2.Encrypt("i:42"));
}

TEST_F(JoinRegistryTest, UngroupedColumnsDoNotShare) {
  JoinKeyRegistry reg(keys_);
  ASSERT_TRUE(reg.AddToGroup("g", "orders.cid").ok());
  auto e1 = reg.EncryptorFor("orders.cid").value();
  auto e2 = reg.EncryptorFor("products.pid").value();
  EXPECT_NE(e1.Encrypt("i:42"), e2.Encrypt("i:42"));
}

TEST_F(JoinRegistryTest, ClassReporting) {
  JoinKeyRegistry reg(keys_);
  ASSERT_TRUE(reg.AddToGroup("g", "a.x").ok());
  EXPECT_EQ(reg.ClassFor("a.x"), PpeClass::kJoin);
  EXPECT_EQ(reg.ClassFor("b.y"), PpeClass::kDet);
  EXPECT_TRUE(reg.IsJoinColumn("a.x"));
  EXPECT_FALSE(reg.IsJoinColumn("b.y"));
  EXPECT_EQ(reg.GroupOf("a.x").value_or(""), "g");
}

TEST_F(JoinRegistryTest, ColumnCannotJoinTwoGroups) {
  JoinKeyRegistry reg(keys_);
  ASSERT_TRUE(reg.AddToGroup("g1", "a.x").ok());
  EXPECT_FALSE(reg.AddToGroup("g2", "a.x").ok());
  EXPECT_TRUE(reg.AddToGroup("g1", "a.x").ok());  // idempotent re-add
}

}  // namespace
}  // namespace dpe::crypto
