#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "crypto/csprng.h"

namespace dpe::crypto {
namespace {

TEST(BigintTest, BasicArithmetic) {
  Bigint a(12), b(5);
  EXPECT_EQ((a + b).ToI64(), 17);
  EXPECT_EQ((a - b).ToI64(), 7);
  EXPECT_EQ((a * b).ToI64(), 60);
  EXPECT_EQ((a / b).ToI64(), 2);
  EXPECT_EQ((a % b).ToI64(), 2);
}

TEST(BigintTest, MathematicalModIsNonNegative) {
  Bigint a(-7), m(5);
  EXPECT_EQ((a % m).ToI64(), 3);
}

TEST(BigintTest, Comparisons) {
  EXPECT_LT(Bigint(3), Bigint(4));
  EXPECT_LE(Bigint(4), Bigint(4));
  EXPECT_GT(Bigint(-1), Bigint(-2));
  EXPECT_EQ(Bigint(0), Bigint());
  EXPECT_NE(Bigint(1), Bigint(-1));
}

TEST(BigintTest, FromStringDecimalAndHex) {
  EXPECT_EQ(Bigint::FromString("123456789012345678901234567890")->ToString(),
            "123456789012345678901234567890");
  EXPECT_EQ(Bigint::FromString("0xff")->ToI64(), 255);
  EXPECT_EQ(Bigint::FromString("-42")->ToI64(), -42);
  EXPECT_FALSE(Bigint::FromString("").ok());
  EXPECT_FALSE(Bigint::FromString("12x").ok());
}

TEST(BigintTest, BytesRoundTrip) {
  for (const char* s : {"0", "1", "255", "256", "18446744073709551616",
                        "123456789012345678901234567890"}) {
    Bigint v = Bigint::FromString(s).value();
    EXPECT_EQ(Bigint::FromBytes(v.ToBytes()), v) << s;
  }
}

TEST(BigintTest, PowMod) {
  // 3^200 mod 1000003.
  Bigint base(3), exp(200), mod(1000003);
  Bigint r = base.PowMod(exp, mod);
  // Verified with an independent computation.
  Bigint check(1);
  for (int i = 0; i < 200; ++i) check = (check * base) % mod;
  EXPECT_EQ(r, check);
}

TEST(BigintTest, InvMod) {
  Bigint a(3), m(11);
  Bigint inv = a.InvMod(m).value();
  EXPECT_EQ((a * inv) % m, Bigint(1));
  EXPECT_FALSE(Bigint(4).InvMod(Bigint(8)).ok());  // gcd != 1
}

TEST(BigintTest, GcdLcm) {
  EXPECT_EQ(Bigint::Gcd(Bigint(12), Bigint(18)), Bigint(6));
  EXPECT_EQ(Bigint::Lcm(Bigint(4), Bigint(6)), Bigint(12));
}

TEST(BigintTest, PrimalityKnownValues) {
  EXPECT_TRUE(Bigint(2).IsProbablePrime());
  EXPECT_TRUE(Bigint(65537).IsProbablePrime());
  EXPECT_TRUE(Bigint::FromString("2305843009213693951")->IsProbablePrime());  // M61
  EXPECT_FALSE(Bigint(1).IsProbablePrime());
  EXPECT_FALSE(Bigint(100).IsProbablePrime());
  EXPECT_FALSE(Bigint::FromString("2305843009213693953")->IsProbablePrime());
}

TEST(BigintTest, RandomBitsHasExactLength) {
  Csprng rng = Csprng::FromSeed("bits");
  for (int bits : {8, 17, 64, 128, 257}) {
    Bigint v = Bigint::RandomBits(bits, rng);
    EXPECT_EQ(v.BitLength(), static_cast<size_t>(bits));
  }
}

TEST(BigintTest, RandomBelowIsBelow) {
  Csprng rng = Csprng::FromSeed("below");
  Bigint bound = Bigint::FromString("1000000000000000000000").value();
  for (int i = 0; i < 50; ++i) {
    Bigint v = Bigint::RandomBelow(bound, rng);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(BigintTest, RandomPrimeIsPrimeWithExactBits) {
  Csprng rng = Csprng::FromSeed("prime");
  Bigint p = Bigint::RandomPrime(96, rng);
  EXPECT_TRUE(p.IsProbablePrime());
  EXPECT_EQ(p.BitLength(), 96u);
}

TEST(BigintTest, FitsI64) {
  EXPECT_TRUE(Bigint(42).FitsI64());
  EXPECT_FALSE(Bigint::FromString("99999999999999999999999999")->FitsI64());
}

}  // namespace
}  // namespace dpe::crypto
