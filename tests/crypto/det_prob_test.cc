#include <gtest/gtest.h>

#include <set>

#include "crypto/det.h"
#include "crypto/keys.h"
#include "crypto/prob.h"

namespace dpe::crypto {
namespace {

class DetProbTest : public ::testing::Test {
 protected:
  KeyManager keys_{"det-prob-test-master"};
};

TEST_F(DetProbTest, DetIsDeterministicAndInvertible) {
  auto det = DetEncryptor::Create(keys_.Derive("d")).value();
  for (const std::string pt :
       std::vector<std::string>{"", "a", "hello world", std::string(1000, 'z')}) {
    Bytes c1 = det.Encrypt(pt);
    Bytes c2 = det.Encrypt(pt);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(det.Decrypt(c1).value(), pt);
  }
}

TEST_F(DetProbTest, DetDistinctPlaintextsDistinctCiphertexts) {
  auto det = DetEncryptor::Create(keys_.Derive("d")).value();
  std::set<Bytes> cts;
  for (int i = 0; i < 500; ++i) cts.insert(det.Encrypt("v" + std::to_string(i)));
  EXPECT_EQ(cts.size(), 500u);
}

TEST_F(DetProbTest, DetKeysSeparateCiphertexts) {
  auto d1 = DetEncryptor::Create(keys_.Derive("k1")).value();
  auto d2 = DetEncryptor::Create(keys_.Derive("k2")).value();
  EXPECT_NE(d1.Encrypt("same"), d2.Encrypt("same"));
}

TEST_F(DetProbTest, DetDetectsTampering) {
  auto det = DetEncryptor::Create(keys_.Derive("d")).value();
  Bytes ct = det.Encrypt("integrity matters");
  ct[ct.size() / 2] = static_cast<char>(ct[ct.size() / 2] ^ 1);
  EXPECT_FALSE(det.Decrypt(ct).ok());
}

TEST_F(DetProbTest, DetRejectsShortCiphertext) {
  auto det = DetEncryptor::Create(keys_.Derive("d")).value();
  EXPECT_FALSE(det.Decrypt("short").ok());
}

TEST_F(DetProbTest, DetRejectsBadKeyLength) {
  EXPECT_FALSE(DetEncryptor::Create("tiny").ok());
}

TEST_F(DetProbTest, ProbIsProbabilistic) {
  auto prob =
      ProbEncryptor::Create(keys_.Derive("p"), Csprng::FromSeed("s")).value();
  std::set<Bytes> cts;
  for (int i = 0; i < 200; ++i) cts.insert(prob.Encrypt("the same plaintext"));
  EXPECT_EQ(cts.size(), 200u);
}

TEST_F(DetProbTest, ProbRoundTrips) {
  auto prob =
      ProbEncryptor::Create(keys_.Derive("p"), Csprng::FromSeed("s")).value();
  for (const std::string pt :
       std::vector<std::string>{"", "x", "some value", std::string(500, 'q')}) {
    Bytes ct = prob.Encrypt(pt);
    EXPECT_EQ(prob.Decrypt(ct).value(), pt);
  }
}

TEST_F(DetProbTest, ProbCiphertextLeaksOnlyLength) {
  auto prob =
      ProbEncryptor::Create(keys_.Derive("p"), Csprng::FromSeed("s")).value();
  EXPECT_EQ(prob.Encrypt("aaaa").size(), prob.Encrypt("bbbb").size());
}

TEST_F(DetProbTest, ClassesSelfIdentify) {
  auto det = DetEncryptor::Create(keys_.Derive("d")).value();
  auto prob =
      ProbEncryptor::Create(keys_.Derive("p"), Csprng::FromSeed("s")).value();
  EXPECT_TRUE(det.deterministic());
  EXPECT_EQ(det.ppe_class(), PpeClass::kDet);
  EXPECT_FALSE(prob.deterministic());
  EXPECT_EQ(prob.ppe_class(), PpeClass::kProb);
}

TEST(SchemeTest, OrderPreservingI64Encoding) {
  EXPECT_LT(OrderPreservingU64FromI64(-5), OrderPreservingU64FromI64(3));
  EXPECT_LT(OrderPreservingU64FromI64(INT64_MIN), OrderPreservingU64FromI64(0));
  EXPECT_LT(OrderPreservingU64FromI64(0), OrderPreservingU64FromI64(INT64_MAX));
  for (int64_t v : {INT64_MIN, -1L, 0L, 1L, INT64_MAX}) {
    EXPECT_EQ(I64FromOrderPreservingU64(OrderPreservingU64FromI64(v)), v);
  }
}

TEST(SchemeTest, OrderPreservingDoubleEncoding) {
  double values[] = {-1e300, -3.5, -0.0, 0.0, 1e-10, 2.0, 7.25, 1e300};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    if (values[i] == values[i + 1]) continue;  // -0.0 vs 0.0
    EXPECT_LT(OrderPreservingU64FromDouble(values[i]),
              OrderPreservingU64FromDouble(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
  for (double v : {-123.5, 0.25, 3.14159, 1e17}) {
    EXPECT_EQ(DoubleFromOrderPreservingU64(OrderPreservingU64FromDouble(v)), v);
  }
}

}  // namespace
}  // namespace dpe::crypto
