#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace dpe::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA256.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, '\x0b');
  EXPECT_EQ(HexEncode(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexEncode(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, '\xaa');
  Bytes msg(50, '\xdd');
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, '\xaa');
  EXPECT_EQ(HexEncode(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(PrfTest, DomainSeparationByLabel) {
  EXPECT_NE(Prf("k", "label-a", "input"), Prf("k", "label-b", "input"));
  EXPECT_NE(Prf("k", "a", "bc"), Prf("k", "ab", "c"));  // separator matters
  EXPECT_EQ(Prf("k", "a", "b"), Prf("k", "a", "b"));
}

TEST(PrfTest, ExpandLengthAndDeterminism) {
  Bytes b1 = PrfExpand("key", "label", "input", 100);
  Bytes b2 = PrfExpand("key", "label", "input", 100);
  EXPECT_EQ(b1.size(), 100u);
  EXPECT_EQ(b1, b2);
  // Prefix property: shorter expansion is a prefix of longer.
  Bytes b3 = PrfExpand("key", "label", "input", 32);
  EXPECT_EQ(b1.substr(0, 32), b3);
}

TEST(PrfTest, U64Deterministic) {
  EXPECT_EQ(PrfU64("k", "l", "x"), PrfU64("k", "l", "x"));
  EXPECT_NE(PrfU64("k", "l", "x"), PrfU64("k", "l", "y"));
}

// RFC 5869 test vectors for HKDF-SHA256.
TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, '\x0b');
  auto salt = HexDecode("000102030405060708090a0b0c").value();
  auto info = HexDecode("f0f1f2f3f4f5f6f7f8f9").value();
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  Bytes ikm(22, '\x0b');
  Bytes okm = Hkdf(ikm, "", "", 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, DistinctInfosYieldIndependentKeys) {
  Bytes a = Hkdf("master", "salt", "purpose-a", 32);
  Bytes b = Hkdf("master", "salt", "purpose-b", 32);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 32u);
}

}  // namespace
}  // namespace dpe::crypto
