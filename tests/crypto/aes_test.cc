#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "common/hex.h"

namespace dpe::crypto {
namespace {

Bytes H(const char* hex) { return HexDecode(hex).value(); }

// FIPS-197 Appendix C known-answer tests.
TEST(AesTest, Fips197Aes128) {
  auto aes = Aes::Create(H("000102030405060708090a0b0c0d0e0f")).value();
  Bytes pt = H("00112233445566778899aabbccddeeff");
  unsigned char ct[16];
  aes.EncryptBlock(reinterpret_cast<const unsigned char*>(pt.data()), ct);
  EXPECT_EQ(HexEncode(std::string(reinterpret_cast<char*>(ct), 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  unsigned char back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(back), 16), pt);
}

TEST(AesTest, Fips197Aes192) {
  auto aes =
      Aes::Create(H("000102030405060708090a0b0c0d0e0f1011121314151617")).value();
  Bytes pt = H("00112233445566778899aabbccddeeff");
  unsigned char ct[16];
  aes.EncryptBlock(reinterpret_cast<const unsigned char*>(pt.data()), ct);
  EXPECT_EQ(HexEncode(std::string(reinterpret_cast<char*>(ct), 16)),
            "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Aes256) {
  auto aes = Aes::Create(
                 H("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"))
                 .value();
  Bytes pt = H("00112233445566778899aabbccddeeff");
  unsigned char ct[16];
  aes.EncryptBlock(reinterpret_cast<const unsigned char*>(pt.data()), ct);
  EXPECT_EQ(HexEncode(std::string(reinterpret_cast<char*>(ct), 16)),
            "8ea2b7ca516745bfeafc49904b496089");
  unsigned char back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(back), 16), pt);
}

// NIST SP 800-38A F.5.1 (AES-128-CTR).
TEST(AesTest, Sp800_38aCtr128) {
  auto aes = Aes::Create(H("2b7e151628aed2a6abf7158809cf4f3c")).value();
  Bytes iv = H("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = H(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Bytes ct = aes.CtrXcrypt(iv, pt);
  EXPECT_EQ(HexEncode(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
  EXPECT_EQ(aes.CtrXcrypt(iv, ct), pt);  // CTR is an involution
}

TEST(AesTest, CtrHandlesPartialBlocks) {
  auto aes = Aes::Create(Bytes(16, 'k')).value();
  Bytes iv(16, '\0');
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 33u, 100u}) {
    Bytes pt(len, 'x');
    Bytes ct = aes.CtrXcrypt(iv, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(aes.CtrXcrypt(iv, ct), pt);
  }
}

TEST(AesTest, CbcRoundTripWithPadding) {
  auto aes = Aes::Create(Bytes(32, 'q')).value();
  Bytes iv(16, 'i');
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 64u}) {
    Bytes pt(len, 'm');
    Bytes ct = aes.CbcEncrypt(iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), pt.size());  // always padded
    auto back = aes.CbcDecrypt(iv, ct);
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST(AesTest, CbcRejectsCorruptPadding) {
  auto aes = Aes::Create(Bytes(16, 'k')).value();
  Bytes iv(16, '\0');
  Bytes ct = aes.CbcEncrypt(iv, "hello");
  ct.back() = static_cast<char>(ct.back() ^ 0x55);
  EXPECT_FALSE(aes.CbcDecrypt(iv, ct).ok());
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create("short").ok());
  EXPECT_FALSE(Aes::Create(Bytes(17, 'x')).ok());
  EXPECT_FALSE(Aes::Create(Bytes(33, 'x')).ok());
}

TEST(AesTest, RoundCounts) {
  EXPECT_EQ(Aes::Create(Bytes(16, 'a'))->rounds(), 10);
  EXPECT_EQ(Aes::Create(Bytes(24, 'a'))->rounds(), 12);
  EXPECT_EQ(Aes::Create(Bytes(32, 'a'))->rounds(), 14);
}

}  // namespace
}  // namespace dpe::crypto
