#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/http.h"
#include "obs/metrics.h"

namespace dpe::obs {
namespace {

// -- URL parsing -------------------------------------------------------------

TEST(HttpTest, ParseHttpUrl) {
  ParsedUrl url;
  ASSERT_TRUE(ParseHttpUrl("http://127.0.0.1:9091/metrics/job/dpe", &url));
  EXPECT_EQ(url.host, "127.0.0.1");
  EXPECT_EQ(url.port, 9091);
  EXPECT_EQ(url.path, "/metrics/job/dpe");

  ASSERT_TRUE(ParseHttpUrl("http://gateway.local", &url));
  EXPECT_EQ(url.host, "gateway.local");
  EXPECT_EQ(url.port, 80);
  EXPECT_EQ(url.path, "/");

  std::string error;
  EXPECT_FALSE(ParseHttpUrl("https://secure.example/p", &url, &error));
  EXPECT_FALSE(ParseHttpUrl("not a url", &url, &error));
  EXPECT_FALSE(ParseHttpUrl("http://:8080/", &url, &error));
  EXPECT_FALSE(ParseHttpUrl("http://h:99999/", &url, &error));
}

// -- HttpServer --------------------------------------------------------------

TEST(HttpTest, ServerEchoesThroughHandler) {
  auto server = HttpServer::Start(
      HttpServer::Options{},
      [](const HttpRequestIn& req) {
        HttpReply reply;
        reply.body = req.method + " " + req.path;
        return reply;
      });
  ASSERT_NE(server, nullptr);
  ASSERT_GT(server->port(), 0);

  HttpResponse response;
  std::string error;
  ASSERT_TRUE(HttpGet("127.0.0.1", server->port(), "/hello", 5000, &response,
                      &error))
      << error;
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "GET /hello");
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST(HttpTest, ServerStopIsIdempotentAndFast) {
  auto server = HttpServer::Start(HttpServer::Options{},
                                  [](const HttpRequestIn&) {
                                    return HttpReply{};
                                  });
  ASSERT_NE(server, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  server->Stop();
  server->Stop();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  // Shutdown is a self-pipe wake, not a poll-timeout wait.
  EXPECT_LT(ms, 1000.0);
}

TEST(HttpTest, SinkRecordsPostsAndCanFailThem) {
  auto sink = HttpSink::Start();
  ASSERT_NE(sink, nullptr);
  const ParsedUrl url{"127.0.0.1", sink->port(), "/push"};

  HttpResponse response;
  std::string error;
  ASSERT_TRUE(HttpPost(url, "text/plain", "payload-1", 5000, &response,
                       &error))
      << error;
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(sink->posts(), 1u);
  EXPECT_EQ(sink->last_body(), "payload-1");

  sink->set_respond_status(503);
  ASSERT_TRUE(HttpPost(url, "text/plain", "payload-2", 5000, &response,
                       &error));
  EXPECT_EQ(response.status_code, 503);
  // Failed posts are neither counted nor recorded.
  EXPECT_EQ(sink->posts(), 1u);
  EXPECT_EQ(sink->last_body(), "payload-1");
}

// -- TelemetryServer ---------------------------------------------------------

TEST(TelemetryTest, ServesEndpointsAndCountsRequests) {
  MetricsRegistry registry;
  TelemetryServer::Options options;
  options.metrics = &registry;
  TelemetryEndpoints endpoints;
  endpoints.metrics_text = [] { return std::string("dpe_up 1\n"); };
  endpoints.healthz_json = [] { return std::string("{\"status\":\"ok\"}"); };
  endpoints.stats_json = [] { return std::string("{\"metrics\":[]}"); };
  // trace_json left null: /trace must 404.
  std::string error;
  auto server = TelemetryServer::Start(options, endpoints, &error);
  ASSERT_NE(server, nullptr) << error;

  const int port = server->port();
  HttpResponse response;
  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/metrics", 5000, &response));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "dpe_up 1\n");

  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/healthz", 5000, &response));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "{\"status\":\"ok\"}");

  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/stats", 5000, &response));
  EXPECT_EQ(response.status_code, 200);

  // Query strings are stripped before routing.
  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/metrics?format=text", 5000,
                      &response));
  EXPECT_EQ(response.status_code, 200);

  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/trace", 5000, &response));
  EXPECT_EQ(response.status_code, 404);
  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/nope", 5000, &response));
  EXPECT_EQ(response.status_code, 404);

  // Non-GET is 405 regardless of path.
  ASSERT_TRUE(HttpPost(ParsedUrl{"127.0.0.1", port, "/metrics"}, "text/plain",
                       "x", 5000, &response));
  EXPECT_EQ(response.status_code, 405);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSample* metrics_requests =
      snapshot.Find("telemetry.requests", {{"path", "/metrics"}});
  ASSERT_NE(metrics_requests, nullptr);
  EXPECT_EQ(metrics_requests->counter_value, 2u);
}

TEST(TelemetryTest, PortCollisionFailsStartWithError) {
  TelemetryEndpoints endpoints;
  std::string error;
  auto first = TelemetryServer::Start(TelemetryServer::Options{}, endpoints,
                                      &error);
  ASSERT_NE(first, nullptr) << error;
  TelemetryServer::Options second_options;
  second_options.port = first->port();
  auto second =
      TelemetryServer::Start(second_options, endpoints, &error);
  EXPECT_EQ(second, nullptr);
  EXPECT_FALSE(error.empty());
}

// -- MetricsPusher -----------------------------------------------------------

TEST(PusherTest, PushNowDeliversPayloadToSink) {
  auto sink = HttpSink::Start();
  ASSERT_NE(sink, nullptr);
  MetricsRegistry registry;
  MetricsPusher::Options options;
  options.url = "http://127.0.0.1:" + std::to_string(sink->port()) + "/push";
  options.interval_ms = 60000;  // loop idles; PushNow drives the test
  options.metrics = &registry;
  std::string error;
  auto pusher = MetricsPusher::Start(
      options, [] { return std::string("dpe_x_total 7\n"); }, &error);
  ASSERT_NE(pusher, nullptr) << error;

  ASSERT_TRUE(pusher->PushNow(&error)) << error;
  EXPECT_EQ(sink->last_body(), "dpe_x_total 7\n");
  EXPECT_GE(pusher->pushes(), 1u);
  EXPECT_EQ(pusher->failures(), 0u);
  EXPECT_EQ(pusher->backoff_ms(), 0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSample* pushes = snapshot.Find("telemetry.pushes", {});
  ASSERT_NE(pushes, nullptr);
  EXPECT_GE(pushes->counter_value, 1u);
}

TEST(PusherTest, UnparseableUrlFailsStart) {
  std::string error;
  auto pusher = MetricsPusher::Start(
      MetricsPusher::Options{.url = "gopher://x"},
      [] { return std::string(); }, &error);
  EXPECT_EQ(pusher, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(PusherTest, DeadEndpointCountsFailuresAndBacksOffCapped) {
  // A loopback port with nothing listening: connects fail fast. The
  // pusher must never throw/blow up — it counts and backs off.
  auto taken = HttpSink::Start();  // grab a port, then free it
  ASSERT_NE(taken, nullptr);
  const int dead_port = taken->port();
  taken.reset();

  MetricsRegistry registry;
  MetricsPusher::Options options;
  options.url = "http://127.0.0.1:" + std::to_string(dead_port) + "/push";
  options.interval_ms = 10;
  options.min_backoff_ms = 20;
  options.max_backoff_ms = 50;
  options.timeout_ms = 200;
  options.metrics = &registry;
  std::string error;
  auto pusher = MetricsPusher::Start(
      options, [] { return std::string("x"); }, &error);
  ASSERT_NE(pusher, nullptr) << error;

  // Drive a few failures synchronously; the background loop adds more.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(pusher->PushNow());
  }
  EXPECT_GE(pusher->failures(), 3u);
  EXPECT_EQ(pusher->pushes(), 0u);
  // Backoff grew but respects the cap.
  EXPECT_GT(pusher->backoff_ms(), 0);
  EXPECT_LE(pusher->backoff_ms(), options.max_backoff_ms);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSample* failures =
      snapshot.Find("telemetry.push_failures", {});
  ASSERT_NE(failures, nullptr);
  EXPECT_GE(failures->counter_value, 3u);

  pusher->Stop();  // must not hang mid-backoff
}

TEST(PusherTest, Non2xxIsAFailureAndSuccessResetsBackoff) {
  auto sink = HttpSink::Start();
  ASSERT_NE(sink, nullptr);
  MetricsPusher::Options options;
  options.url = "http://127.0.0.1:" + std::to_string(sink->port()) + "/push";
  options.interval_ms = 60000;
  options.min_backoff_ms = 10;
  options.max_backoff_ms = 40;
  std::string error;
  auto pusher = MetricsPusher::Start(
      options, [] { return std::string("x"); }, &error);
  ASSERT_NE(pusher, nullptr) << error;

  sink->set_respond_status(503);
  EXPECT_FALSE(pusher->PushNow());
  EXPECT_FALSE(pusher->PushNow());
  EXPECT_FALSE(pusher->PushNow());
  EXPECT_GE(pusher->failures(), 3u);
  EXPECT_LE(pusher->backoff_ms(), 40);
  EXPECT_GT(pusher->backoff_ms(), 0);

  sink->set_respond_status(200);
  EXPECT_TRUE(pusher->PushNow(&error)) << error;
  EXPECT_EQ(pusher->backoff_ms(), 0);  // one success resets the ladder
}

TEST(PusherTest, IntervalLoopPushesWithoutPushNow) {
  auto sink = HttpSink::Start();
  ASSERT_NE(sink, nullptr);
  MetricsPusher::Options options;
  options.url = "http://127.0.0.1:" + std::to_string(sink->port()) + "/push";
  options.interval_ms = 20;
  std::string error;
  auto pusher = MetricsPusher::Start(
      options, [] { return std::string("tick"); }, &error);
  ASSERT_NE(pusher, nullptr) << error;
  for (int i = 0; i < 200 && sink->posts() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink->posts(), 1u);
  EXPECT_EQ(sink->last_body(), "tick");
}

}  // namespace
}  // namespace dpe::obs
