#include "obs/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dpe::obs {
namespace {

TEST(LogTest, ScopedSinkCapturesStructuredRecord) {
  std::vector<LogRecord> captured;
  {
    ScopedLogSink scoped(
        [&captured](const LogRecord& r) { captured.push_back(r); });
    Log(LogLevel::kWarn, "kernel", "falling back",
        {{"requested", "avx2"}, {"resolved", "scalar"}});
  }
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kWarn);
  EXPECT_EQ(captured[0].component, "kernel");
  EXPECT_EQ(captured[0].message, "falling back");
  ASSERT_EQ(captured[0].fields.size(), 2u);
  EXPECT_EQ(captured[0].fields[0].first, "requested");
  EXPECT_EQ(captured[0].fields[0].second, "avx2");
}

TEST(LogTest, ScopedSinksNestAndRestore) {
  std::vector<std::string> outer_msgs;
  std::vector<std::string> inner_msgs;
  {
    ScopedLogSink outer(
        [&outer_msgs](const LogRecord& r) { outer_msgs.push_back(r.message); });
    {
      ScopedLogSink inner([&inner_msgs](const LogRecord& r) {
        inner_msgs.push_back(r.message);
      });
      Log(LogLevel::kInfo, "t", "to-inner");
    }
    Log(LogLevel::kInfo, "t", "to-outer");
  }
  EXPECT_EQ(inner_msgs, std::vector<std::string>{"to-inner"});
  EXPECT_EQ(outer_msgs, std::vector<std::string>{"to-outer"});
}

TEST(LogTest, FormatIncludesLevelComponentAndFields) {
  LogRecord record;
  record.level = LogLevel::kWarn;
  record.component = "kernel";
  record.message = "requested backend unavailable";
  record.fields = {{"requested", "avx2"}, {"resolved", "scalar"}};
  const std::string text = FormatLogRecord(record);
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("[kernel]"), std::string::npos);
  EXPECT_NE(text.find("requested backend unavailable"), std::string::npos);
  EXPECT_NE(text.find("requested=avx2"), std::string::npos);
  EXPECT_NE(text.find("resolved=scalar"), std::string::npos);
}

TEST(LogTest, FormatWithoutFieldsHasNoParenthetical) {
  LogRecord record;
  record.level = LogLevel::kError;
  record.component = "store";
  record.message = "boom";
  const std::string text = FormatLogRecord(record);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_EQ(text.find('('), std::string::npos);
}

// Regression: the sink registry once held a single mutex across the sink
// invocation, so a slow sink blocked SetLogSink for its whole duration (and
// a sink touching sink state deadlocked outright). The registry now copies
// the sink out under the state lock and invokes it under a separate
// delivery lock — installing a sink must complete while another thread is
// still inside a slow sink.
TEST(LogTest, SinkInstallationDoesNotWaitOutSlowSink) {
  std::mutex mu;
  std::condition_variable cv;
  bool in_sink = false;
  bool released = false;
  bool swap_done = false;

  SetLogSink([&](const LogRecord&) {
    std::unique_lock<std::mutex> lock(mu);
    in_sink = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  });

  std::thread logger([] { Log(LogLevel::kInfo, "t", "slow-delivery"); });

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_sink; });
  }
  // The logger thread is now parked inside the sink. Installing a new sink
  // from a second thread must finish without waiting for it.
  std::thread swapper([&] {
    SetLogSink([](const LogRecord&) {});
    std::unique_lock<std::mutex> lock(mu);
    swap_done = true;
    cv.notify_all();
  });
  bool swapped;
  {
    std::unique_lock<std::mutex> lock(mu);
    swapped = cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return swap_done; });
    // Unblock the parked sink either way so the threads always join.
    released = true;
    cv.notify_all();
  }
  EXPECT_TRUE(swapped) << "SetLogSink blocked behind an in-flight delivery";
  logger.join();
  swapper.join();
  SetLogSink(nullptr);  // restore the default stderr sink
}

// Regression companion for the TSan leg: concurrent Log() emitters against
// a thread churning the sink stack. Any unguarded access to the installed
// sink or the ScopedLogSink stack is a data race here; the exactly-once
// delivery count additionally fails the test if a record is dropped or
// double-delivered during a swap.
TEST(LogTest, ConcurrentLoggingAndSinkSwapsDeliverEachRecordOnce) {
  std::atomic<int> delivered{0};
  const auto counting_sink = [&](const LogRecord&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  ScopedLogSink base(counting_sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ScopedLogSink inner(counting_sink);  // push + pop under load
    }
  });
  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Log(LogLevel::kInfo, "t", "concurrent");
      }
    });
  }
  for (auto& e : emitters) e.join();
  stop.store(true, std::memory_order_relaxed);
  churner.join();
  EXPECT_EQ(delivered.load(), kThreads * kPerThread);
}

TEST(LogTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "error");
}

}  // namespace
}  // namespace dpe::obs
