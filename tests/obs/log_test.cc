#include "obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dpe::obs {
namespace {

TEST(LogTest, ScopedSinkCapturesStructuredRecord) {
  std::vector<LogRecord> captured;
  {
    ScopedLogSink scoped(
        [&captured](const LogRecord& r) { captured.push_back(r); });
    Log(LogLevel::kWarn, "kernel", "falling back",
        {{"requested", "avx2"}, {"resolved", "scalar"}});
  }
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kWarn);
  EXPECT_EQ(captured[0].component, "kernel");
  EXPECT_EQ(captured[0].message, "falling back");
  ASSERT_EQ(captured[0].fields.size(), 2u);
  EXPECT_EQ(captured[0].fields[0].first, "requested");
  EXPECT_EQ(captured[0].fields[0].second, "avx2");
}

TEST(LogTest, ScopedSinksNestAndRestore) {
  std::vector<std::string> outer_msgs;
  std::vector<std::string> inner_msgs;
  {
    ScopedLogSink outer(
        [&outer_msgs](const LogRecord& r) { outer_msgs.push_back(r.message); });
    {
      ScopedLogSink inner([&inner_msgs](const LogRecord& r) {
        inner_msgs.push_back(r.message);
      });
      Log(LogLevel::kInfo, "t", "to-inner");
    }
    Log(LogLevel::kInfo, "t", "to-outer");
  }
  EXPECT_EQ(inner_msgs, std::vector<std::string>{"to-inner"});
  EXPECT_EQ(outer_msgs, std::vector<std::string>{"to-outer"});
}

TEST(LogTest, FormatIncludesLevelComponentAndFields) {
  LogRecord record;
  record.level = LogLevel::kWarn;
  record.component = "kernel";
  record.message = "requested backend unavailable";
  record.fields = {{"requested", "avx2"}, {"resolved", "scalar"}};
  const std::string text = FormatLogRecord(record);
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("[kernel]"), std::string::npos);
  EXPECT_NE(text.find("requested backend unavailable"), std::string::npos);
  EXPECT_NE(text.find("requested=avx2"), std::string::npos);
  EXPECT_NE(text.find("resolved=scalar"), std::string::npos);
}

TEST(LogTest, FormatWithoutFieldsHasNoParenthetical) {
  LogRecord record;
  record.level = LogLevel::kError;
  record.component = "store";
  record.message = "boom";
  const std::string text = FormatLogRecord(record);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_EQ(text.find('('), std::string::npos);
}

TEST(LogTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "error");
}

}  // namespace
}  // namespace dpe::obs
