#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/report.h"

namespace dpe::obs {
namespace {

TEST(MetricsTest, CounterIdentityByNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("distance.calls", {{"measure", "token"}});
  Counter& b = registry.counter("distance.calls", {{"measure", "token"}});
  Counter& c = registry.counter("distance.calls", {{"measure", "structure"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x", {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.counter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammered");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsTest, ConcurrentHistogramObservationsSumExactly) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {}, {1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(t % 3) * 7.0);  // 0, 7 or 14
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(MetricsTest, HistogramBucketBoundariesAreLeInclusive) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("b", {}, {1.0, 2.0, 4.0});
  h.Observe(1.0);  // == first bound -> bucket 0 (le semantics)
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // == second bound -> bucket 1
  h.Observe(4.0);  // == last bound -> bucket 2
  h.Observe(4.5);  // overflow bucket
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 1.0 + 1.5 + 2.0 + 4.0 + 4.5);
}

TEST(MetricsTest, HistogramQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q", {}, {10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.Observe(5.0);  // all in [0, 10]
  const HistogramSnapshot s = h.snapshot();
  // All mass in the first bucket: quantiles interpolate within [0, 10].
  EXPECT_GT(s.p50(), 0.0);
  EXPECT_LE(s.p50(), 10.0);
  EXPECT_LE(s.p99(), 10.0);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
}

TEST(MetricsTest, QuantileOfOverflowReportsLastBound) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("o", {}, {1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.snapshot().p50(), 2.0);
}

TEST(MetricsTest, EmptyHistogramQuantileIsZero) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("e", {}, {1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().p50(), 0.0);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("depth");
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsTest, SnapshotIsSortedAndFindable) {
  MetricsRegistry registry;
  registry.counter("zebra").Increment(1);
  registry.counter("apple", {{"k", "v"}}).Increment(2);
  registry.gauge("mango").Set(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "apple");
  EXPECT_EQ(snapshot.samples[1].name, "mango");
  EXPECT_EQ(snapshot.samples[2].name, "zebra");
  const MetricSample* apple = snapshot.Find("apple", {{"k", "v"}});
  ASSERT_NE(apple, nullptr);
  EXPECT_EQ(apple->counter_value, 2u);
  EXPECT_EQ(snapshot.Find("apple"), nullptr);  // labels are part of identity
  EXPECT_EQ(snapshot.Find("nope"), nullptr);
}

TEST(MetricsTest, ResetZeroesInPlaceAndKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Histogram& h = registry.histogram("h", {}, {1.0});
  c.Increment(7);
  h.Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.Increment();  // the old reference still works
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(registry.instrument_count(), 2u);
}

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.counter("distance.calls", {{"measure", "token"}}).Increment(42);
  registry.gauge("kernel.backend", {{"backend", "scalar"}}).Set(1);
  registry.histogram("api.ms", {}, {1.0, 10.0}).Observe(0.5);
  const std::string text = PrometheusText(registry.Snapshot());
  const std::string expected =
      "# TYPE dpe_api_ms histogram\n"
      "dpe_api_ms_bucket{le=\"1\"} 1\n"
      "dpe_api_ms_bucket{le=\"10\"} 1\n"
      "dpe_api_ms_bucket{le=\"+Inf\"} 1\n"
      "dpe_api_ms_sum 0.5\n"
      "dpe_api_ms_count 1\n"
      "# TYPE dpe_distance_calls_total counter\n"
      "dpe_distance_calls_total{measure=\"token\"} 42\n"
      "# TYPE dpe_kernel_backend gauge\n"
      "dpe_kernel_backend{backend=\"scalar\"} 1\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsTest, StatsReportRendersStagesAndInfo) {
  StatsReport report;
  report.info = {{"kernel_backend", "scalar"}};
  report.stages = {{"compute", 12.5}, {"journal", 0.25}};
  const std::string text = report.ToPrometheusText();
  EXPECT_NE(text.find("# info kernel_backend=scalar\n"), std::string::npos);
  EXPECT_NE(text.find("dpe_last_build_stage_ms{stage=\"compute\"} 12.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpe_last_build_stage_ms{stage=\"journal\"} 0.25\n"),
            std::string::npos);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"compute\",\"ms\":12.5}"),
            std::string::npos);
}

TEST(MetricsTest, SnapshotJsonCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat.ms", {}, {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  const std::string json = SnapshotJson(registry.Snapshot());
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

// -- Exporter conformance edges ----------------------------------------------

TEST(MetricsTest, PrometheusTextOfEmptyRegistryIsEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(PrometheusText(registry.Snapshot()), "");
}

TEST(MetricsTest, PrometheusTextEscapesLabelValues) {
  // The three characters the exposition format requires escaping in label
  // values: backslash, double quote, newline.
  MetricsRegistry registry;
  registry.counter("weird", {{"q", "a\\b\"c\nd"}}).Increment();
  const std::string text = PrometheusText(registry.Snapshot());
  EXPECT_EQ(text,
            "# TYPE dpe_weird_total counter\n"
            "dpe_weird_total{q=\"a\\\\b\\\"c\\nd\"} 1\n");
}

TEST(MetricsTest, PrometheusTextHistogramWithZeroObservations) {
  // Registration alone must still export the full (all-zero) bucket
  // series: scrapers need the family to exist before the first event.
  MetricsRegistry registry;
  registry.histogram("idle.ms", {}, {1.0, 10.0});
  const std::string expected =
      "# TYPE dpe_idle_ms histogram\n"
      "dpe_idle_ms_bucket{le=\"1\"} 0\n"
      "dpe_idle_ms_bucket{le=\"10\"} 0\n"
      "dpe_idle_ms_bucket{le=\"+Inf\"} 0\n"
      "dpe_idle_ms_sum 0\n"
      "dpe_idle_ms_count 0\n";
  EXPECT_EQ(PrometheusText(registry.Snapshot()), expected);
}

TEST(MetricsTest, DefaultRegistryIsAProcessSingleton) {
  MetricsRegistry& a = MetricsRegistry::Default();
  MetricsRegistry& b = MetricsRegistry::Default();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dpe::obs
