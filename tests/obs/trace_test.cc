#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dpe::obs {
namespace {

TEST(TraceTest, DisabledBufferRecordsNothing) {
  TraceBuffer buffer;  // disabled by default
  {
    TraceSpan span("noop", &buffer);
  }
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceTest, DetachedSpanStillMeasuresElapsed) {
  TraceSpan span("free");
  span.End();
  EXPECT_GE(span.elapsed_ms(), 0.0);
}

TEST(TraceTest, EnabledBufferCapturesSpan) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan span("build.compute", &buffer);
  }
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "build.compute");
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceTest, NestedSpansRecordIncreasingDepthAndContainment) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan outer("outer", &buffer);
    {
      TraceSpan middle("middle", &buffer);
      {
        TraceSpan inner("inner", &buffer);
      }
    }
  }
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans end inner-first, so the buffer holds inner, middle, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 0u);
  // All on one thread, so they share one small tid.
  EXPECT_EQ(events[0].tid, events[2].tid);
  // Containment: outer starts no later and ends no earlier than inner.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[2];
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
}

TEST(TraceTest, DepthOnlyCountsRecordingSpans) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan detached("not-recording");  // no buffer: must not bump depth
    TraceSpan recorded("recording", &buffer);
  }
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceTest, EndIsIdempotent) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  TraceSpan span("once", &buffer);
  span.End();
  const double first = span.elapsed_ms();
  span.End();
  span.End();
  EXPECT_EQ(span.elapsed_ms(), first);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TraceTest, SpanFeedsLatencyHistogramEvenWhenNotRecording) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat.ms");
  {
    TraceSpan span("timed", nullptr, &h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TraceTest, EnableAfterConstructionDoesNotRecordInFlightSpan) {
  TraceBuffer buffer;
  TraceSpan span("late", &buffer);
  buffer.set_enabled(true);  // too late: recording decided at construction
  span.End();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceTest, ClearEmptiesBuffer) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan span("gone", &buffer);
  }
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceTest, ChromeJsonShape) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan outer("build", &buffer);
    {
      TraceSpan inner("tile \"0\"", &buffer);  // quotes must be escaped
    }
  }
  const std::string json = buffer.ToChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tile \\\"0\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  // Events are sorted by start time: "build" starts first.
  EXPECT_LT(json.find("\"name\":\"build\""),
            json.find("\"name\":\"tile"));
}

TEST(TraceTest, EmptyBufferStillExportsValidShell) {
  TraceBuffer buffer;
  const std::string json = buffer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\""), std::string::npos);
}

TEST(TraceTest, TraceNowNsIsMonotonic) {
  const uint64_t a = TraceNowNs();
  const uint64_t b = TraceNowNs();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace dpe::obs
