#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace dpe::obs {
namespace {

TEST(TraceTest, DisabledBufferRecordsNothing) {
  TraceBuffer buffer;  // disabled by default
  {
    TraceSpan span("noop", &buffer);
  }
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceTest, DetachedSpanStillMeasuresElapsed) {
  TraceSpan span("free");
  span.End();
  EXPECT_GE(span.elapsed_ms(), 0.0);
}

TEST(TraceTest, EnabledBufferCapturesSpan) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan span("build.compute", &buffer);
  }
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "build.compute");
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceTest, NestedSpansRecordIncreasingDepthAndContainment) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan outer("outer", &buffer);
    {
      TraceSpan middle("middle", &buffer);
      {
        TraceSpan inner("inner", &buffer);
      }
    }
  }
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans end inner-first, so the buffer holds inner, middle, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 0u);
  // All on one thread, so they share one small tid.
  EXPECT_EQ(events[0].tid, events[2].tid);
  // Containment: outer starts no later and ends no earlier than inner.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[2];
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
}

TEST(TraceTest, DepthOnlyCountsRecordingSpans) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan detached("not-recording");  // no buffer: must not bump depth
    TraceSpan recorded("recording", &buffer);
  }
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceTest, EndIsIdempotent) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  TraceSpan span("once", &buffer);
  span.End();
  const double first = span.elapsed_ms();
  span.End();
  span.End();
  EXPECT_EQ(span.elapsed_ms(), first);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TraceTest, SpanFeedsLatencyHistogramEvenWhenNotRecording) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat.ms");
  {
    TraceSpan span("timed", nullptr, &h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TraceTest, EnableAfterConstructionDoesNotRecordInFlightSpan) {
  TraceBuffer buffer;
  TraceSpan span("late", &buffer);
  buffer.set_enabled(true);  // too late: recording decided at construction
  span.End();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceTest, ClearEmptiesBuffer) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan span("gone", &buffer);
  }
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceTest, ChromeJsonShape) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  {
    TraceSpan outer("build", &buffer);
    {
      TraceSpan inner("tile \"0\"", &buffer);  // quotes must be escaped
    }
  }
  const std::string json = buffer.ToChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tile \\\"0\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  // Events are sorted by start time: "build" starts first.
  EXPECT_LT(json.find("\"name\":\"build\""),
            json.find("\"name\":\"tile"));
}

TEST(TraceTest, EmptyBufferStillExportsValidShell) {
  TraceBuffer buffer;
  const std::string json = buffer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\""), std::string::npos);
}

TEST(TraceTest, TraceNowNsIsMonotonic) {
  const uint64_t a = TraceNowNs();
  const uint64_t b = TraceNowNs();
  EXPECT_LE(a, b);
}

TEST(TraceTest, ExportIsSafeAgainstConcurrentSpanCompletion) {
  // The /trace endpoint exports while builds are mid-flight: hammer
  // ToChromeJson from one thread while others complete spans. The export
  // snapshots under the mutex, so every produced JSON must be
  // well-formed (balanced braces, shell markers present) — a vector
  // reallocation mid-serialize would tear it.
  TraceBuffer buffer;
  buffer.set_enabled(true);
  std::atomic<int> live_writers{3};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&buffer, &live_writers, t] {
      // Fixed span count per writer: keeps the buffer (and thus each
      // export's cost) bounded no matter how threads get scheduled.
      for (uint64_t i = 0; i < 2000; ++i) {
        TraceSpan span("hammer." + std::to_string(t) + "." +
                           std::to_string(i),
                       &buffer);
      }
      live_writers.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  const auto validate = [](const std::string& json, int round) {
    ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
    ASSERT_EQ(json.back(), '\n');
    long depth = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = !in_string;
      } else if (!in_string && (c == '{' || c == '[')) {
        ++depth;
      } else if (!in_string && (c == '}' || c == ']')) {
        --depth;
        ASSERT_GE(depth, 0);
      }
    }
    ASSERT_EQ(depth, 0) << "unbalanced JSON in round " << round;
  };
  for (int round = 0;
       live_writers.load(std::memory_order_relaxed) > 0 && round < 200;
       ++round) {
    validate(buffer.ToChromeJson(), round);
  }
  for (std::thread& t : writers) t.join();
  // One more export after all writers finished: every span made it in.
  validate(buffer.ToChromeJson(), -1);
  EXPECT_EQ(buffer.size(), 3u * 2000u);
}

TEST(TraceTest, AmbientBufferIsThreadLocalAndRestored) {
  EXPECT_EQ(AmbientTraceBuffer(), nullptr);
  TraceBuffer outer_buffer, inner_buffer;
  {
    ScopedAmbientTrace outer(&outer_buffer);
    EXPECT_EQ(AmbientTraceBuffer(), &outer_buffer);
    {
      ScopedAmbientTrace inner(&inner_buffer);
      EXPECT_EQ(AmbientTraceBuffer(), &inner_buffer);
    }
    EXPECT_EQ(AmbientTraceBuffer(), &outer_buffer);
    // Another thread sees its own (null) ambient, not this one's.
    std::thread([] { EXPECT_EQ(AmbientTraceBuffer(), nullptr); }).join();
  }
  EXPECT_EQ(AmbientTraceBuffer(), nullptr);
}

}  // namespace
}  // namespace dpe::obs
