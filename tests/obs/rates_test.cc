#include "obs/rates.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/report.h"

namespace dpe::obs {
namespace {

constexpr uint64_t kSecond = 1'000'000'000ull;

TEST(RatesTest, FirstTickEmitsZeroRateGauges) {
  // One snapshot has no window; rates are 0 but the _per_sec family is
  // already registered in the very first scrape.
  MetricsRegistry registry;
  registry.counter("distance.calls", {{"measure", "token"}}).Increment(100);
  RollingRates rates;
  MetricsSnapshot out = rates.TickAt(registry.Snapshot(), kSecond);
  ASSERT_EQ(out.samples.size(), 1u);
  EXPECT_EQ(out.samples[0].name, "distance.calls.per_sec");
  EXPECT_EQ(out.samples[0].kind, MetricKind::kGauge);
  EXPECT_EQ(out.samples[0].labels, (Labels{{"measure", "token"}}));
  EXPECT_EQ(out.samples[0].gauge_value, 0.0);
  EXPECT_EQ(rates.size(), 1u);
}

TEST(RatesTest, RateIsDeltaOverWindowSeconds) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  RollingRates rates;
  c.Increment(10);
  rates.TickAt(registry.Snapshot(), 0);
  c.Increment(30);  // total 40: 30 new events over 2 s
  MetricsSnapshot out = rates.TickAt(registry.Snapshot(), 2 * kSecond);
  ASSERT_EQ(out.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(out.samples[0].gauge_value, 15.0);
}

TEST(RatesTest, WindowSlidesOncePastCapacity) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  RollingRates rates(RollingRates::Options{.window = 2});
  c.Increment(100);
  rates.TickAt(registry.Snapshot(), 0);
  c.Increment(100);
  rates.TickAt(registry.Snapshot(), 1 * kSecond);
  c.Increment(50);
  // Window holds ticks at t=1s (total 200) and t=2s (total 250): the
  // t=0 burst has slid out.
  MetricsSnapshot out = rates.TickAt(registry.Snapshot(), 2 * kSecond);
  EXPECT_DOUBLE_EQ(out.samples[0].gauge_value, 50.0);
  EXPECT_EQ(rates.size(), 2u);
}

TEST(RatesTest, CounterBornMidWindowCountsFromZero) {
  // A counter absent from the oldest snapshot was zero then (counters are
  // born at zero), so its whole value is the window's delta.
  MetricsRegistry registry;
  RollingRates rates;
  rates.TickAt(registry.Snapshot(), 0);
  registry.counter("late").Increment(30);
  MetricsSnapshot out = rates.TickAt(registry.Snapshot(), 3 * kSecond);
  ASSERT_EQ(out.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(out.samples[0].gauge_value, 10.0);
}

TEST(RatesTest, ResetMidWindowClampsToZeroInsteadOfWrapping) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  RollingRates rates;
  c.Increment(50);
  rates.TickAt(registry.Snapshot(), 0);
  registry.Reset();
  c.Increment(10);  // 10 < the 50 in the oldest snapshot
  MetricsSnapshot out = rates.TickAt(registry.Snapshot(), kSecond);
  EXPECT_DOUBLE_EQ(out.samples[0].gauge_value, 0.0);
}

TEST(RatesTest, NonCounterSamplesAreIgnored) {
  MetricsRegistry registry;
  registry.gauge("depth").Set(7);
  registry.histogram("lat.ms", {}, {1.0}).Observe(0.5);
  registry.counter("only.me").Increment();
  RollingRates rates;
  MetricsSnapshot out = rates.TickAt(registry.Snapshot(), kSecond);
  ASSERT_EQ(out.samples.size(), 1u);
  EXPECT_EQ(out.samples[0].name, "only.me.per_sec");
}

TEST(RatesTest, PerSecGoldenPrometheusText) {
  // The synthetic samples render as ordinary gauge families with the
  // counter's own labels: dpe_<name>_per_sec{...}.
  MetricsRegistry registry;
  Counter& calls =
      registry.counter("distance.calls", {{"measure", "token"}});
  Counter& bytes = registry.counter("store.bytes_written");
  RollingRates rates;
  calls.Increment(10);
  rates.TickAt(registry.Snapshot(), 0);
  calls.Increment(30);
  bytes.Increment(4096);
  const std::string text =
      PrometheusText(rates.TickAt(registry.Snapshot(), 2 * kSecond));
  EXPECT_EQ(text,
            "# TYPE dpe_distance_calls_per_sec gauge\n"
            "dpe_distance_calls_per_sec{measure=\"token\"} 15\n"
            "# TYPE dpe_store_bytes_written_per_sec gauge\n"
            "dpe_store_bytes_written_per_sec 2048\n");
}

TEST(RatesTest, TickAgainstLiveRegistryUsesSteadyClock) {
  MetricsRegistry registry;
  registry.counter("x").Increment(5);
  RollingRates rates;
  MetricsSnapshot first = rates.Tick(registry);
  ASSERT_EQ(first.samples.size(), 1u);
  EXPECT_EQ(first.samples[0].gauge_value, 0.0);  // no window yet
  registry.counter("x").Increment(5);
  MetricsSnapshot second = rates.Tick(registry);
  // Wall time between ticks is unknown; the rate just has to be finite
  // and non-negative.
  EXPECT_GE(second.samples[0].gauge_value, 0.0);
  EXPECT_EQ(rates.size(), 2u);
}

}  // namespace
}  // namespace dpe::obs
