// Shared test helpers for suites that drive the engine over a generated
// scenario (tests/engine, tests/store). The bench counterpart lives in
// bench/bench_util.h.

#ifndef DPE_TESTS_SCENARIO_TEST_UTIL_H_
#define DPE_TESTS_SCENARIO_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "distance/matrix.h"
#include "workload/scenarios.h"

namespace dpe::testutil {

/// Small web-shop scenario, deterministic in the seed.
inline workload::Scenario Shop(uint64_t seed, size_t log_size) {
  workload::ScenarioOptions opt;
  opt.seed = seed;
  opt.rows_per_relation = 40;
  opt.log_size = log_size;
  auto s = workload::MakeShopScenario(opt);
  EXPECT_TRUE(s.ok()) << s.status();
  return std::move(s).value();
}

/// Asserts max |a - b| == 0 — bit-identity, not approximate equality.
inline void ExpectBitIdentical(const distance::DistanceMatrix& a,
                               const distance::DistanceMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  auto diff = distance::DistanceMatrix::MaxAbsDifference(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0.0);
}

}  // namespace dpe::testutil

#endif  // DPE_TESTS_SCENARIO_TEST_UTIL_H_
