#include <gtest/gtest.h>

#include "mining/knn.h"
#include "mining/outlier.h"

namespace dpe::mining {
namespace {

/// Cluster {0..4} tightly packed; 5 is far from everything.
distance::DistanceMatrix OneOutlier() {
  distance::DistanceMatrix m(6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) {
      m.set(i, j, (i == 5 || j == 5) ? 0.9 : 0.1);
    }
  }
  return m;
}

TEST(OutlierTest, DetectsTheIsolatedPoint) {
  OutlierOptions opt;
  opt.p = 0.9;
  opt.d = 0.5;
  auto r = DistanceBasedOutliers(OneOutlier(), opt).value();
  EXPECT_EQ(r.outliers, (std::vector<size_t>{5}));
  EXPECT_TRUE(r.is_outlier[5]);
  EXPECT_FALSE(r.is_outlier[0]);
}

TEST(OutlierTest, ThresholdDSensitivity) {
  OutlierOptions opt;
  opt.p = 0.9;
  opt.d = 0.95;  // nothing is farther than 0.95
  auto r = DistanceBasedOutliers(OneOutlier(), opt).value();
  EXPECT_TRUE(r.outliers.empty());
}

TEST(OutlierTest, FractionPSensitivity) {
  // Point 5 is far from 5/5 others; core points are far from 1/5 others.
  OutlierOptions opt;
  opt.p = 0.15;
  opt.d = 0.5;
  auto r = DistanceBasedOutliers(OneOutlier(), opt).value();
  EXPECT_EQ(r.outliers.size(), 6u);  // everyone is far from >= 15% now
}

TEST(OutlierTest, InvalidPRejected) {
  EXPECT_FALSE(DistanceBasedOutliers(OneOutlier(), {0.0, 0.5}).ok());
  EXPECT_FALSE(DistanceBasedOutliers(OneOutlier(), {1.5, 0.5}).ok());
}

TEST(OutlierTest, EmptyMatrix) {
  auto r = DistanceBasedOutliers(distance::DistanceMatrix(0), OutlierOptions{})
               .value();
  EXPECT_TRUE(r.outliers.empty());
}

TEST(KnnTest, NeighborsSortedByDistanceThenIndex) {
  distance::DistanceMatrix m(4);
  m.set(0, 1, 0.5);
  m.set(0, 2, 0.2);
  m.set(0, 3, 0.5);
  m.set(1, 2, 0.3);
  m.set(1, 3, 0.4);
  m.set(2, 3, 0.6);
  auto nn = NearestNeighbors(m, 0, 3).value();
  EXPECT_EQ(nn, (std::vector<size_t>{2, 1, 3}));  // tie 1 vs 3 -> lower index
}

TEST(KnnTest, BoundsChecked) {
  distance::DistanceMatrix m(3);
  EXPECT_FALSE(NearestNeighbors(m, 5, 1).ok());
  EXPECT_FALSE(NearestNeighbors(m, 0, 3).ok());
}

TEST(KnnTest, MajorityVoteClassification) {
  auto m = OneOutlier();
  Labels labels = {0, 0, 0, 1, 1, 1};
  // Point 0's 3 nearest are 1,2,3 (0.1 each; tie broken by index): votes
  // {0:2, 1:1} -> label 0.
  EXPECT_EQ(KnnClassify(m, labels, 0, 3).value(), 0);
}

TEST(KnnTest, LabelsSizeValidated) {
  auto m = OneOutlier();
  EXPECT_FALSE(KnnClassify(m, {0, 1}, 0, 2).ok());
}

}  // namespace
}  // namespace dpe::mining
