#include "mining/hierarchical.h"

#include <gtest/gtest.h>

namespace dpe::mining {
namespace {

distance::DistanceMatrix LineMatrix() {
  // Points at positions 0, 1, 2, 10, 11 (distances scaled by 1/20).
  double pos[] = {0, 1, 2, 10, 11};
  distance::DistanceMatrix m(5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      m.set(i, j, std::abs(pos[i] - pos[j]) / 20.0);
    }
  }
  return m;
}

TEST(CompleteLinkTest, DendrogramShape) {
  auto d = CompleteLink(LineMatrix()).value();
  EXPECT_EQ(d.leaf_count, 5u);
  EXPECT_EQ(d.merges.size(), 4u);
  // Merge distances are non-decreasing for complete link on a metric.
  for (size_t i = 1; i < d.merges.size(); ++i) {
    EXPECT_GE(d.merges[i].distance, d.merges[i - 1].distance);
  }
}

TEST(CompleteLinkTest, CutK2SeparatesTheGap) {
  auto d = CompleteLink(LineMatrix()).value();
  auto labels = d.CutK(2).value();
  EXPECT_EQ(labels, (Labels{0, 0, 0, 1, 1}));
}

TEST(CompleteLinkTest, CutK1AndKn) {
  auto d = CompleteLink(LineMatrix()).value();
  EXPECT_EQ(d.CutK(1).value(), (Labels{0, 0, 0, 0, 0}));
  auto singletons = d.CutK(5).value();
  std::set<int> distinct(singletons.begin(), singletons.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(CompleteLinkTest, CompleteLinkUsesMaxLinkage) {
  // First merge must be the globally closest pair (0,1) or (1,2) or (3,4),
  // all at 1/20; ties break to the smallest pair -> (0,1).
  auto d = CompleteLink(LineMatrix()).value();
  EXPECT_EQ(d.merges[0].left, 0u);
  EXPECT_EQ(d.merges[0].right, 1u);
  EXPECT_DOUBLE_EQ(d.merges[0].distance, 1.0 / 20.0);
  // Merging {0,1} with {2} costs max(d(0,2), d(1,2)) = 2/20, while {3,4}
  // costs 1/20 -> second merge is (3,4).
  EXPECT_EQ(d.merges[1].left, 3u);
  EXPECT_EQ(d.merges[1].right, 4u);
}

TEST(CompleteLinkTest, InvalidCutRejected) {
  auto d = CompleteLink(LineMatrix()).value();
  EXPECT_FALSE(d.CutK(0).ok());
  EXPECT_FALSE(d.CutK(6).ok());
}

TEST(CompleteLinkTest, DeterministicAcrossRuns) {
  auto d1 = CompleteLink(LineMatrix()).value();
  auto d2 = CompleteLink(LineMatrix()).value();
  ASSERT_EQ(d1.merges.size(), d2.merges.size());
  for (size_t i = 0; i < d1.merges.size(); ++i) {
    EXPECT_EQ(d1.merges[i].left, d2.merges[i].left);
    EXPECT_EQ(d1.merges[i].right, d2.merges[i].right);
  }
}

TEST(CompleteLinkTest, EmptyAndSingleton) {
  auto d0 = CompleteLink(distance::DistanceMatrix(0)).value();
  EXPECT_EQ(d0.merges.size(), 0u);
  auto d1 = CompleteLink(distance::DistanceMatrix(1)).value();
  EXPECT_EQ(d1.merges.size(), 0u);
  EXPECT_EQ(d1.CutK(1).value(), (Labels{0}));
}

}  // namespace
}  // namespace dpe::mining
