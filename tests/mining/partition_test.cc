#include "mining/partition.h"

#include <gtest/gtest.h>

namespace dpe::mining {
namespace {

TEST(PartitionTest, CanonicalizeRelabelsByFirstAppearance) {
  EXPECT_EQ(CanonicalizeLabels({5, 5, 2, 2, 9}), (Labels{0, 0, 1, 1, 2}));
  EXPECT_EQ(CanonicalizeLabels({0, 1, 2}), (Labels{0, 1, 2}));
}

TEST(PartitionTest, NoiseStaysNoise) {
  EXPECT_EQ(CanonicalizeLabels({-1, 3, -1, 3}), (Labels{-1, 0, -1, 0}));
}

TEST(PartitionTest, SamePartitionUpToRelabeling) {
  EXPECT_TRUE(SamePartition({0, 0, 1}, {7, 7, 3}));
  EXPECT_FALSE(SamePartition({0, 0, 1}, {0, 1, 1}));
  EXPECT_FALSE(SamePartition({0, 0}, {0, 0, 0}));
  EXPECT_TRUE(SamePartition({-1, 0, 0}, {-1, 5, 5}));
  EXPECT_FALSE(SamePartition({-1, 0, 0}, {0, 0, 0}));
}

TEST(PartitionTest, RandIndexIdentical) {
  EXPECT_EQ(RandIndex({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);
}

TEST(PartitionTest, RandIndexWorked) {
  // Labels {0,0,1,1} vs {0,1,1,1}: pairs (6 total):
  // (0,1): same/diff -> disagree; (0,2): diff/diff agree; (0,3) diff/diff agree;
  // (1,2): diff/same disagree; (1,3): diff/same disagree; (2,3): same/same agree.
  EXPECT_DOUBLE_EQ(RandIndex({0, 0, 1, 1}, {0, 1, 1, 1}), 0.5);
}

TEST(PartitionTest, AdjustedRandIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 1, 0, 1, 2}, {5, 9, 5, 9, 7}), 1.0);
}

TEST(PartitionTest, AdjustedRandRandomIsLow) {
  // Independent labelings should land near 0.
  Labels a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(i % 2);
    b.push_back((i / 2) % 2);
  }
  double ari = AdjustedRandIndex(a, b);
  EXPECT_LT(ari, 0.2);
  EXPECT_GT(ari, -0.2);
}

TEST(PartitionTest, NoiseAsSingletons) {
  // Two all-noise labelings of the same size are the same partition.
  EXPECT_EQ(RandIndex({-1, -1}, {-1, -1}), 1.0);
  EXPECT_TRUE(SamePartition({-1, -1}, {-1, -1}));
}

}  // namespace
}  // namespace dpe::mining
