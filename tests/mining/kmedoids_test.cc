#include "mining/kmedoids.h"

#include <gtest/gtest.h>

namespace dpe::mining {
namespace {

/// Two tight groups {0,1,2} and {3,4,5} far apart.
distance::DistanceMatrix TwoBlobs() {
  distance::DistanceMatrix m(6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) {
      bool same = (i < 3) == (j < 3);
      m.set(i, j, same ? 0.1 : 0.9);
    }
  }
  return m;
}

TEST(KMedoidsTest, SeparatesTwoBlobs) {
  KMedoidsOptions opt;
  opt.k = 2;
  auto r = KMedoids(TwoBlobs(), opt).value();
  EXPECT_EQ(r.labels, (Labels{0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(r.medoids.size(), 2u);
}

TEST(KMedoidsTest, KOneGroupsEverything) {
  KMedoidsOptions opt;
  opt.k = 1;
  auto r = KMedoids(TwoBlobs(), opt).value();
  EXPECT_EQ(r.labels, (Labels{0, 0, 0, 0, 0, 0}));
}

TEST(KMedoidsTest, KEqualsNMakesSingletons) {
  KMedoidsOptions opt;
  opt.k = 6;
  auto r = KMedoids(TwoBlobs(), opt).value();
  std::set<int> distinct(r.labels.begin(), r.labels.end());
  EXPECT_EQ(distinct.size(), 6u);
}

TEST(KMedoidsTest, DeterministicAcrossRuns) {
  KMedoidsOptions opt;
  opt.k = 2;
  auto r1 = KMedoids(TwoBlobs(), opt).value();
  auto r2 = KMedoids(TwoBlobs(), opt).value();
  EXPECT_EQ(r1.labels, r2.labels);
  EXPECT_EQ(r1.medoids, r2.medoids);
}

TEST(KMedoidsTest, MedoidsMinimizeWithinClusterCost) {
  distance::DistanceMatrix m(5);
  // Points on a line: 0-1-2-3-4 with distance |i-j|/10.
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      m.set(i, j, static_cast<double>(j - i) / 10.0);
    }
  }
  KMedoidsOptions opt;
  opt.k = 1;
  auto r = KMedoids(m, opt).value();
  EXPECT_EQ(r.medoids[0], 2u);  // the middle point
  EXPECT_DOUBLE_EQ(r.total_deviation, (0.2 + 0.1 + 0.0 + 0.1 + 0.2));
}

TEST(KMedoidsTest, InvalidK) {
  EXPECT_FALSE(KMedoids(TwoBlobs(), {0, 10}).ok());
  EXPECT_FALSE(KMedoids(TwoBlobs(), {7, 10}).ok());
}

TEST(KMedoidsTest, IdenticalMatricesGiveIdenticalClusterings) {
  // The DPE property consumer: same matrix (however obtained) -> same labels.
  distance::DistanceMatrix a = TwoBlobs();
  distance::DistanceMatrix b = TwoBlobs();
  KMedoidsOptions opt;
  opt.k = 3;
  EXPECT_EQ(KMedoids(a, opt).value().labels, KMedoids(b, opt).value().labels);
}

}  // namespace
}  // namespace dpe::mining
