#include "mining/association.h"

#include <gtest/gtest.h>

namespace dpe::mining {
namespace {

std::vector<Transaction> MarketBasket() {
  // Classic toy basket data.
  return {
      {"bread", "milk"},
      {"bread", "diapers", "beer", "eggs"},
      {"milk", "diapers", "beer", "cola"},
      {"bread", "milk", "diapers", "beer"},
      {"bread", "milk", "diapers", "cola"},
  };
}

TEST(AprioriTest, FrequentItemsetsWithSupports) {
  AprioriOptions opt;
  opt.min_support = 0.6;
  opt.min_confidence = 0.5;
  auto r = Apriori(MarketBasket(), opt).value();
  // Singletons at support >= 0.6: bread(4/5), milk(4/5), diapers(4/5),
  // beer(3/5); pairs: {bread,milk} 3/5, {bread,diapers} 3/5,
  // {milk,diapers} 3/5, {beer,diapers} 3/5.
  size_t singletons = 0, pairs = 0;
  for (const auto& f : r.frequent) {
    if (f.items.size() == 1) ++singletons;
    if (f.items.size() == 2) ++pairs;
    EXPECT_GE(f.support, 0.6);
  }
  EXPECT_EQ(singletons, 4u);
  EXPECT_EQ(pairs, 4u);
}

TEST(AprioriTest, RuleConfidenceAndLift) {
  AprioriOptions opt;
  opt.min_support = 0.6;
  opt.min_confidence = 0.99;
  auto r = Apriori(MarketBasket(), opt).value();
  // beer -> diapers has confidence 3/3 = 1.0; diapers -> beer only 3/4.
  bool found_beer_rule = false;
  for (const auto& rule : r.rules) {
    if (rule.lhs == ItemSet{"beer"}) {
      EXPECT_EQ(rule.rhs, ItemSet{"diapers"});
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_DOUBLE_EQ(rule.support, 0.6);
      EXPECT_NEAR(rule.lift, 1.0 / 0.8, 1e-9);
      found_beer_rule = true;
    }
    EXPECT_NE(rule.lhs, ItemSet{"diapers"});  // conf 0.75 < 0.99 filtered
  }
  EXPECT_TRUE(found_beer_rule);
}

TEST(AprioriTest, MonotonicityOfSupport) {
  AprioriOptions opt;
  opt.min_support = 0.2;
  opt.min_confidence = 0.5;
  auto r = Apriori(MarketBasket(), opt).value();
  // Every subset of a frequent set is frequent with >= support (Apriori
  // property); check pairwise against singletons.
  std::map<ItemSet, double> support;
  for (const auto& f : r.frequent) support[f.items] = f.support;
  for (const auto& f : r.frequent) {
    for (const auto& item : f.items) {
      ItemSet single{item};
      ASSERT_TRUE(support.contains(single));
      EXPECT_GE(support[single], f.support);
    }
  }
}

TEST(AprioriTest, EmptyAndDegenerateInputs) {
  AprioriOptions opt;
  auto r = Apriori({}, opt).value();
  EXPECT_TRUE(r.frequent.empty());
  EXPECT_TRUE(r.rules.empty());
  EXPECT_FALSE(Apriori(MarketBasket(), {0.0, 0.5, 3}).ok());
  EXPECT_FALSE(Apriori(MarketBasket(), {0.5, 1.5, 3}).ok());
}

TEST(AprioriTest, MaxItemsetSizeCaps) {
  AprioriOptions opt;
  opt.min_support = 0.2;
  opt.max_itemset_size = 1;
  auto r = Apriori(MarketBasket(), opt).value();
  for (const auto& f : r.frequent) EXPECT_EQ(f.items.size(), 1u);
  EXPECT_TRUE(r.rules.empty());
}

TEST(AprioriTest, DeterministicOrdering) {
  AprioriOptions opt;
  opt.min_support = 0.4;
  opt.min_confidence = 0.6;
  auto r1 = Apriori(MarketBasket(), opt).value();
  auto r2 = Apriori(MarketBasket(), opt).value();
  ASSERT_EQ(r1.rules.size(), r2.rules.size());
  for (size_t i = 0; i < r1.rules.size(); ++i) {
    EXPECT_EQ(r1.rules[i].ToString(), r2.rules[i].ToString());
  }
}

TEST(AprioriTest, BijectiveItemRenamingRenamesResults) {
  // The DPE property: renaming items through any injection yields the same
  // rules with renamed items and identical statistics.
  AprioriOptions opt;
  opt.min_support = 0.4;
  opt.min_confidence = 0.6;
  auto plain = Apriori(MarketBasket(), opt).value();

  auto rename = [](const Item& i) { return "enc(" + i + ")"; };
  std::vector<Transaction> renamed;
  for (const auto& t : MarketBasket()) {
    Transaction rt;
    for (const auto& i : t) rt.insert(rename(i));
    renamed.push_back(std::move(rt));
  }
  auto enc = Apriori(renamed, opt).value();

  ASSERT_EQ(plain.rules.size(), enc.rules.size());
  // Compare statistics multisets.
  auto stats = [](const AprioriResult& r) {
    std::multiset<std::pair<double, double>> out;
    for (const auto& rule : r.rules) out.insert({rule.support, rule.confidence});
    return out;
  };
  EXPECT_EQ(stats(plain), stats(enc));
  // And the rename maps rules one-to-one.
  for (const auto& rule : plain.rules) {
    ItemSet lhs, rhs;
    for (const auto& i : rule.lhs) lhs.insert(rename(i));
    for (const auto& i : rule.rhs) rhs.insert(rename(i));
    bool found = false;
    for (const auto& erule : enc.rules) {
      if (erule.lhs == lhs && erule.rhs == rhs) {
        EXPECT_DOUBLE_EQ(erule.support, rule.support);
        EXPECT_DOUBLE_EQ(erule.confidence, rule.confidence);
        found = true;
      }
    }
    EXPECT_TRUE(found) << rule.ToString();
  }
}

}  // namespace
}  // namespace dpe::mining
