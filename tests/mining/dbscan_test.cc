#include "mining/dbscan.h"

#include <gtest/gtest.h>

namespace dpe::mining {
namespace {

/// Blobs {0,1,2}, {3,4,5} plus an isolated point 6.
distance::DistanceMatrix BlobsWithNoise() {
  distance::DistanceMatrix m(7);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = i + 1; j < 7; ++j) {
      double d;
      if (i == 6 || j == 6) {
        d = 0.95;
      } else if ((i < 3) == (j < 3)) {
        d = 0.1;
      } else {
        d = 0.8;
      }
      m.set(i, j, d);
    }
  }
  return m;
}

TEST(DbscanTest, FindsClustersAndNoise) {
  DbscanOptions opt;
  opt.epsilon = 0.2;
  opt.min_points = 3;
  auto r = Dbscan(BlobsWithNoise(), opt).value();
  EXPECT_EQ(r.cluster_count, 2u);
  EXPECT_EQ(r.labels, (Labels{0, 0, 0, 1, 1, 1, -1}));
}

TEST(DbscanTest, LargeEpsilonMergesEverything) {
  DbscanOptions opt;
  opt.epsilon = 1.0;
  opt.min_points = 2;
  auto r = Dbscan(BlobsWithNoise(), opt).value();
  EXPECT_EQ(r.cluster_count, 1u);
  for (int l : r.labels) EXPECT_EQ(l, 0);
}

TEST(DbscanTest, TinyEpsilonMakesAllNoise) {
  DbscanOptions opt;
  opt.epsilon = 0.01;
  opt.min_points = 2;
  auto r = Dbscan(BlobsWithNoise(), opt).value();
  EXPECT_EQ(r.cluster_count, 0u);
  for (int l : r.labels) EXPECT_EQ(l, -1);
}

TEST(DbscanTest, MinPointsGate) {
  DbscanOptions opt;
  opt.epsilon = 0.2;
  opt.min_points = 4;  // blobs have only 3 members
  auto r = Dbscan(BlobsWithNoise(), opt).value();
  EXPECT_EQ(r.cluster_count, 0u);
}

TEST(DbscanTest, BorderPointAttachesToFirstCluster) {
  // Chain: 0-1 close, 1-2 close, 0-2 far; min_points=2 makes all core.
  distance::DistanceMatrix m(3);
  m.set(0, 1, 0.1);
  m.set(1, 2, 0.1);
  m.set(0, 2, 0.5);
  DbscanOptions opt;
  opt.epsilon = 0.2;
  opt.min_points = 2;
  auto r = Dbscan(m, opt).value();
  EXPECT_EQ(r.cluster_count, 1u);
  EXPECT_EQ(r.labels, (Labels{0, 0, 0}));  // density-connected chain
}

TEST(DbscanTest, DeterministicAcrossRuns) {
  DbscanOptions opt;
  opt.epsilon = 0.2;
  opt.min_points = 3;
  EXPECT_EQ(Dbscan(BlobsWithNoise(), opt).value().labels,
            Dbscan(BlobsWithNoise(), opt).value().labels);
}

TEST(DbscanTest, NegativeEpsilonRejected) {
  DbscanOptions opt;
  opt.epsilon = -0.1;
  EXPECT_FALSE(Dbscan(BlobsWithNoise(), opt).ok());
}

TEST(DbscanTest, EmptyMatrix) {
  auto r = Dbscan(distance::DistanceMatrix(0), DbscanOptions{}).value();
  EXPECT_EQ(r.cluster_count, 0u);
  EXPECT_TRUE(r.labels.empty());
}

}  // namespace
}  // namespace dpe::mining
