// Bit-identity of the parallel mining kernels: every miner run with a
// thread pool of {1, 2, 4, 8} workers must produce exactly the result of
// its serial reference (pool == nullptr) — labels, medoids, FP deviations,
// merge distances, outlier sets — on odd sizes (uneven chunking) and on
// tie-heavy matrices (quantized distances), where nondeterministic
// reductions or tie-breaks would show first.

#include <gtest/gtest.h>

#include <random>

#include "common/thread_pool.h"
#include "mining/dbscan.h"
#include "mining/hierarchical.h"
#include "mining/kmedoids.h"
#include "mining/outlier.h"

namespace dpe::mining {
namespace {

/// Symmetric random matrix, quantized to one decimal so exact distance
/// ties are common — the tie-break order is part of the contract.
distance::DistanceMatrix TieHeavyMatrix(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tenth(0, 10);
  distance::DistanceMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      m.set(i, j, tenth(rng) / 10.0);
    }
  }
  return m;
}

/// Smooth random matrix (no artificial ties) in [0, 1].
distance::DistanceMatrix SmoothMatrix(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  distance::DistanceMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) m.set(i, j, u(rng));
  }
  return m;
}

const size_t kThreadCounts[] = {1, 2, 4, 8};

void ExpectKMedoidsIdentical(const distance::DistanceMatrix& m, size_t k) {
  KMedoidsOptions serial_opt;
  serial_opt.k = k;
  auto serial = KMedoids(m, serial_opt).value();
  for (size_t threads : kThreadCounts) {
    common::ThreadPool pool(threads);
    KMedoidsOptions opt = serial_opt;
    opt.pool = &pool;
    auto parallel = KMedoids(m, opt).value();
    EXPECT_EQ(parallel.labels, serial.labels) << threads << " threads";
    EXPECT_EQ(parallel.medoids, serial.medoids) << threads << " threads";
    // EXPECT_EQ on the double: the deviation reduction must be bit-stable.
    EXPECT_EQ(parallel.total_deviation, serial.total_deviation)
        << threads << " threads";
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads << " threads";
  }
}

void ExpectDbscanIdentical(const distance::DistanceMatrix& m) {
  DbscanOptions serial_opt;
  serial_opt.epsilon = 0.35;
  serial_opt.min_points = 3;
  auto serial = Dbscan(m, serial_opt).value();
  for (size_t threads : kThreadCounts) {
    common::ThreadPool pool(threads);
    DbscanOptions opt = serial_opt;
    opt.pool = &pool;
    auto parallel = Dbscan(m, opt).value();
    EXPECT_EQ(parallel.labels, serial.labels) << threads << " threads";
    EXPECT_EQ(parallel.cluster_count, serial.cluster_count)
        << threads << " threads";
  }
}

void ExpectHierarchicalIdentical(const distance::DistanceMatrix& m) {
  auto serial = CompleteLink(m).value();
  for (size_t threads : kThreadCounts) {
    common::ThreadPool pool(threads);
    auto parallel = CompleteLink(m, &pool).value();
    ASSERT_EQ(parallel.merges.size(), serial.merges.size())
        << threads << " threads";
    for (size_t i = 0; i < serial.merges.size(); ++i) {
      EXPECT_EQ(parallel.merges[i].left, serial.merges[i].left)
          << threads << " threads, merge " << i;
      EXPECT_EQ(parallel.merges[i].right, serial.merges[i].right)
          << threads << " threads, merge " << i;
      EXPECT_EQ(parallel.merges[i].distance, serial.merges[i].distance)
          << threads << " threads, merge " << i;
    }
  }
}

void ExpectOutliersIdentical(const distance::DistanceMatrix& m) {
  OutlierOptions serial_opt;
  serial_opt.p = 0.7;
  serial_opt.d = 0.6;
  auto serial = DistanceBasedOutliers(m, serial_opt).value();
  for (size_t threads : kThreadCounts) {
    common::ThreadPool pool(threads);
    OutlierOptions opt = serial_opt;
    opt.pool = &pool;
    auto parallel = DistanceBasedOutliers(m, opt).value();
    EXPECT_EQ(parallel.is_outlier, serial.is_outlier) << threads << " threads";
    EXPECT_EQ(parallel.outliers, serial.outliers) << threads << " threads";
  }
}

TEST(ParallelMiningTest, KMedoidsBitIdenticalAcrossThreadCounts) {
  ExpectKMedoidsIdentical(TieHeavyMatrix(37, 1), 4);
  ExpectKMedoidsIdentical(SmoothMatrix(41, 2), 5);
  ExpectKMedoidsIdentical(SmoothMatrix(9, 3), 3);  // n smaller than grain*threads
}

TEST(ParallelMiningTest, DbscanBitIdenticalAcrossThreadCounts) {
  ExpectDbscanIdentical(TieHeavyMatrix(37, 4));
  ExpectDbscanIdentical(SmoothMatrix(41, 5));
  ExpectDbscanIdentical(SmoothMatrix(9, 6));
}

TEST(ParallelMiningTest, HierarchicalBitIdenticalAcrossThreadCounts) {
  ExpectHierarchicalIdentical(TieHeavyMatrix(25, 7));
  ExpectHierarchicalIdentical(SmoothMatrix(31, 8));
  ExpectHierarchicalIdentical(SmoothMatrix(7, 9));
}

TEST(ParallelMiningTest, OutliersBitIdenticalAcrossThreadCounts) {
  ExpectOutliersIdentical(TieHeavyMatrix(37, 10));
  ExpectOutliersIdentical(SmoothMatrix(41, 11));
  ExpectOutliersIdentical(SmoothMatrix(9, 12));
}

TEST(ParallelMiningTest, DegenerateSizes) {
  for (size_t n : {0u, 1u, 2u, 3u}) {
    distance::DistanceMatrix m = SmoothMatrix(n, 13);
    common::ThreadPool pool(4);
    if (n >= 1) {
      KMedoidsOptions kopt;
      kopt.k = 1;
      kopt.pool = &pool;
      KMedoidsOptions kserial;
      kserial.k = 1;
      EXPECT_EQ(KMedoids(m, kopt).value().labels,
                KMedoids(m, kserial).value().labels);
    }
    DbscanOptions dopt;
    dopt.pool = &pool;
    DbscanOptions dserial;
    EXPECT_EQ(Dbscan(m, dopt).value().labels,
              Dbscan(m, dserial).value().labels);
    EXPECT_EQ(CompleteLink(m, &pool).value().merges.size(),
              CompleteLink(m).value().merges.size());
    OutlierOptions oopt;
    oopt.pool = &pool;
    OutlierOptions oserial;
    EXPECT_EQ(DistanceBasedOutliers(m, oopt).value().outliers,
              DistanceBasedOutliers(m, oserial).value().outliers);
  }
}

}  // namespace
}  // namespace dpe::mining
